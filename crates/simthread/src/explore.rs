//! Exhaustive interleaving exploration: pluggable schedulers and a
//! DFS enumerator over the model's decision points.
//!
//! The protocol model ([`crate::model`]) is driven entirely through
//! explicit *choice points* — which simulated thread steps next, which
//! node an op targets, how large a drain batch is. This module abstracts
//! those choice points behind [`Chooser`] so the same model code runs
//! under three schedulers:
//!
//! * [`RandomChooser`] — seeded uniform choices; the randomized suites
//!   for large shapes (the pre-explorer behaviour).
//! * [`TraceChooser`] — replays a recorded **decision string** (the
//!   dot-separated indices printed when an exploration fails), so any
//!   failing interleaving is reproducible in isolation.
//! * The DFS enumerator inside [`explore`] — runs the scenario once per
//!   *distinct decision sequence*, backtracking depth-first until every
//!   interleaving at the scenario's bounds has been executed. This is
//!   stateless model checking in the loom/shuttle style, at the
//!   granularity of the model's abstract operations.
//!
//! Exploration is exhaustive, so scenarios must keep bounds small
//! (2–3 simulated threads, ≤ 8 operations: at most a few thousand
//! schedules). [`ExploreConfig::max_schedules`] is a hard safety rail: a
//! scenario that exceeds it fails loudly instead of burning CI time.
//!
//! A scenario is any `Fn(&mut dyn Chooser)` that panics on an invariant
//! violation (the model's census asserts do exactly that). [`explore`]
//! catches the panic, reports how many schedules ran before it, and
//! returns the failing decision string — [`replay`] turns that string
//! back into the violating run under a debugger or with extra logging.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of scheduling/parameter decisions for a model run.
///
/// Every nondeterministic choice the model makes goes through
/// [`Chooser::choose`], which picks an index in `0..n`. Implementations
/// decide *how*: randomly, by replaying a trace, or by systematic
/// enumeration.
pub trait Chooser {
    /// Picks an index in `0..n` (`n >= 1`). `label` names the decision
    /// point in diagnostics; it carries no semantics.
    fn choose(&mut self, label: &'static str, n: usize) -> usize;
}

/// Seeded uniform random decisions (the randomized-schedule scheduler).
pub struct RandomChooser {
    rng: StdRng,
}

impl RandomChooser {
    /// A chooser whose decision stream is a pure function of `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, _label: &'static str, n: usize) -> usize {
        assert!(n >= 1, "choice point with no alternatives");
        self.rng.gen_range(0..n)
    }
}

/// Replays a recorded decision string, panicking on any divergence.
pub struct TraceChooser {
    decisions: Vec<usize>,
    pos: usize,
}

impl TraceChooser {
    /// Parses a dot-separated decision string (e.g. `"0.2.1.0"`), as
    /// printed by a failing [`explore`] run.
    pub fn parse(trace: &str) -> Self {
        let decisions = trace
            .split('.')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("malformed decision string component {s:?}"))
            })
            .collect();
        Self { decisions, pos: 0 }
    }

    /// Decisions consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Chooser for TraceChooser {
    fn choose(&mut self, label: &'static str, n: usize) -> usize {
        assert!(n >= 1, "choice point with no alternatives");
        let taken = *self.decisions.get(self.pos).unwrap_or_else(|| {
            panic!(
                "decision string exhausted at step {} ({label}): the trace \
                 was recorded against a different scenario or bounds",
                self.pos
            )
        });
        assert!(
            taken < n,
            "decision {taken} out of range 0..{n} at step {} ({label}): the \
             trace was recorded against a different scenario or bounds",
            self.pos
        );
        self.pos += 1;
        taken
    }
}

/// One decision made during an explored run.
#[derive(Debug, Clone, Copy)]
struct Decision {
    taken: usize,
    n: usize,
    label: &'static str,
}

/// DFS chooser: follows a fixed prefix, then defaults to alternative 0,
/// recording the full path so the driver can backtrack.
struct DfsChooser {
    prefix: Vec<Decision>,
    path: Vec<Decision>,
}

impl Chooser for DfsChooser {
    fn choose(&mut self, label: &'static str, n: usize) -> usize {
        assert!(n >= 1, "choice point with no alternatives");
        let pos = self.path.len();
        let taken = match self.prefix.get(pos) {
            Some(d) => {
                assert_eq!(
                    d.n, n,
                    "scenario is nondeterministic: decision point {pos} ({label}) \
                     had {} alternatives on the previous run, {n} now — explored \
                     scenarios must be pure functions of their decisions",
                    d.n
                );
                d.taken
            }
            None => 0,
        };
        self.path.push(Decision { taken, n, label });
        taken
    }
}

/// Bounds for one exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Hard cap on enumerated schedules; exceeding it is an error (the
    /// scenario's bounds are too large for exhaustive exploration).
    pub max_schedules: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_schedules: 1_000_000,
        }
    }
}

/// Result of a completed (exhaustive) exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreReport {
    /// Distinct schedules (decision sequences) executed.
    pub schedules: usize,
    /// Longest decision sequence encountered.
    pub max_depth: usize,
}

/// A schedule that violated a scenario invariant.
#[derive(Debug)]
pub struct Violation {
    /// Schedules executed up to and including the failing one.
    pub schedules: usize,
    /// Replayable decision string for the failing schedule (feed to
    /// [`replay`] / [`TraceChooser::parse`]).
    pub trace: String,
    /// Human-readable decisions with labels, one per line.
    pub annotated: String,
    /// The panic message of the violated invariant.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "violation after {} schedule(s)\n  panic: {}\n  replay decision string: {}\n  decisions:\n{}",
            self.schedules, self.message, self.trace, self.annotated
        )
    }
}

fn format_trace(path: &[Decision]) -> String {
    path.iter()
        .map(|d| d.taken.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

fn format_annotated(path: &[Decision]) -> String {
    path.iter()
        .enumerate()
        .map(|(i, d)| format!("    {i:3}: {} = {}/{}", d.label, d.taken, d.n))
        .collect::<Vec<_>>()
        .join("\n")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Exhaustively enumerates every decision sequence of `scenario`,
/// returning how many schedules ran, or the first [`Violation`].
///
/// The scenario must be a pure function of its decisions: two runs fed
/// the same choices must make the same sequence of `choose` calls (the
/// enumerator asserts this). Panics inside the scenario are treated as
/// invariant violations and reported with a replayable decision string;
/// exceeding [`ExploreConfig::max_schedules`] panics, because a
/// truncated exploration would silently claim exhaustiveness.
pub fn explore_with_config<F>(
    name: &str,
    config: ExploreConfig,
    scenario: F,
) -> Result<ExploreReport, Violation>
where
    F: Fn(&mut dyn Chooser),
{
    let mut prefix: Vec<Decision> = Vec::new();
    let mut schedules = 0usize;
    let mut max_depth = 0usize;
    loop {
        let mut chooser = DfsChooser {
            prefix: std::mem::take(&mut prefix),
            path: Vec::new(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| scenario(&mut chooser)));
        schedules += 1;
        max_depth = max_depth.max(chooser.path.len());
        if let Err(payload) = outcome {
            return Err(Violation {
                schedules,
                trace: format_trace(&chooser.path),
                annotated: format_annotated(&chooser.path),
                message: panic_message(payload.as_ref()),
            });
        }
        assert!(
            schedules <= config.max_schedules,
            "[{name}] exceeded {} schedules: bounds too large for exhaustive \
             exploration (shrink the scenario or raise max_schedules)",
            config.max_schedules
        );
        // Backtrack: drop fully-explored suffix decisions, then advance
        // the deepest decision that still has untried alternatives.
        let mut path = chooser.path;
        while path.last().is_some_and(|d| d.taken + 1 >= d.n) {
            path.pop();
        }
        match path.last_mut() {
            None => {
                return Ok(ExploreReport {
                    schedules,
                    max_depth,
                })
            }
            Some(d) => d.taken += 1,
        }
        prefix = path;
    }
}

/// [`explore_with_config`] with default bounds.
pub fn explore<F>(name: &str, scenario: F) -> Result<ExploreReport, Violation>
where
    F: Fn(&mut dyn Chooser),
{
    explore_with_config(name, ExploreConfig::default(), scenario)
}

/// Like [`explore`], but panics with the full diagnostic on violation —
/// the form test suites call directly.
pub fn check<F>(name: &str, scenario: F) -> ExploreReport
where
    F: Fn(&mut dyn Chooser),
{
    match explore(name, scenario) {
        Ok(report) => report,
        Err(v) => panic!("[{name}] {v}"),
    }
}

/// Re-runs `scenario` under the decision string of a failed exploration.
///
/// Panics (with the original invariant message) if the violation
/// reproduces — which it must, for a deterministic scenario.
pub fn replay<F>(trace: &str, scenario: F)
where
    F: FnOnce(&mut dyn Chooser),
{
    let mut chooser = TraceChooser::parse(trace);
    scenario(&mut chooser);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy scenario: three binary decisions; "bug" when they read 1,0,1.
    fn toy(ch: &mut dyn Chooser) {
        let a = ch.choose("a", 2);
        let b = ch.choose("b", 2);
        let c = ch.choose("c", 2);
        assert!(!(a == 1 && b == 0 && c == 1), "toy invariant violated");
    }

    #[test]
    fn exhaustive_enumeration_counts_all_schedules() {
        // No violation: 2 * 3 * 2 = 12 distinct schedules.
        let report = check("count", |ch| {
            ch.choose("x", 2);
            ch.choose("y", 3);
            ch.choose("z", 2);
        });
        assert_eq!(report.schedules, 12);
        assert_eq!(report.max_depth, 3);
    }

    #[test]
    fn variable_depth_trees_are_fully_enumerated() {
        // First decision selects a branch with a different number of
        // follow-up decisions: 1 (leaf) + 2 + 3*2 = 9 schedules.
        let report = check("vardepth", |ch| match ch.choose("branch", 3) {
            0 => {}
            1 => {
                ch.choose("b1", 2);
            }
            _ => {
                ch.choose("b2a", 3);
                ch.choose("b2b", 2);
            }
        });
        assert_eq!(report.schedules, 9);
    }

    #[test]
    fn violation_reports_replayable_trace() {
        let v = explore("toy", toy).expect_err("toy scenario must fail");
        assert_eq!(v.trace, "1.0.1");
        assert!(v.message.contains("toy invariant violated"));
        // The printed decision string replays to the same violation.
        let replayed = catch_unwind(|| replay(&v.trace, toy)).expect_err("replay must reproduce");
        assert!(panic_message(replayed.as_ref()).contains("toy invariant violated"));
    }

    #[test]
    fn trace_chooser_rejects_divergent_traces() {
        let err = catch_unwind(|| {
            replay("5", |ch| {
                ch.choose("a", 2);
            })
        })
        .expect_err("out-of-range decision must panic");
        assert!(panic_message(err.as_ref()).contains("out of range"));
        let err = catch_unwind(|| {
            replay("1", |ch| {
                ch.choose("a", 2);
                ch.choose("b", 2);
            })
        })
        .expect_err("exhausted trace must panic");
        assert!(panic_message(err.as_ref()).contains("exhausted"));
    }

    #[test]
    fn random_chooser_is_deterministic_per_seed() {
        let stream = |seed| {
            let mut ch = RandomChooser::seeded(seed);
            (0..32).map(|_| ch.choose("s", 7)).collect::<Vec<_>>()
        };
        assert_eq!(stream(9), stream(9));
        assert_ne!(stream(9), stream(10), "different seeds should diverge");
    }

    #[test]
    fn schedule_cap_fails_loudly() {
        let result = catch_unwind(|| {
            explore_with_config("cap", ExploreConfig { max_schedules: 3 }, |ch| {
                ch.choose("wide", 10);
            })
        });
        assert!(result.is_err(), "cap overflow must panic, not truncate");
    }
}
