//! Shadow stacks: explicit, scannable per-thread root sets.
//!
//! The real platform scans raw thread stacks; that is inherently
//! nondeterministic (dead slots, register spills). For *protocol* testing
//! we substitute an explicit root region per simulated thread: a fixed
//! array of words the test publishes references into. The scan semantics
//! are identical to a stack scan — conservative, word-by-word, non-atomic —
//! but the root set is exactly known, so tests can assert both directions:
//! rooted nodes are never freed, unrooted nodes always are.

use std::sync::atomic::{AtomicUsize, Ordering};

use threadscan::ScanSession;

/// A fixed-size region of root words for one simulated thread.
///
/// Writers (the owning test thread) use [`ShadowStack::publish`] /
/// [`ShadowStack::retract`]; any thread may [`ShadowStack::scan`] it, which
/// mirrors the OS delivering a signal to whatever state the thread is in.
pub struct ShadowStack {
    words: Box<[AtomicUsize]>,
}

impl ShadowStack {
    /// A shadow stack with `capacity` root slots.
    pub fn new(capacity: usize) -> Self {
        let words = (0..capacity)
            .map(|_| AtomicUsize::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { words }
    }

    /// Number of root slots.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Publishes `value` as a root. Returns the slot used, or `None` when
    /// every slot is occupied.
    pub fn publish(&self, value: usize) -> Option<usize> {
        for (i, w) in self.words.iter().enumerate() {
            if w.compare_exchange(0, value, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    /// Clears the root in `slot`, returning its previous value.
    pub fn retract(&self, slot: usize) -> usize {
        self.words[slot].swap(0, Ordering::AcqRel)
    }

    /// Overwrites `slot` unconditionally (simulates a stack slot being
    /// reused for a different local).
    pub fn overwrite(&self, slot: usize, value: usize) -> usize {
        self.words[slot].swap(value, Ordering::AcqRel)
    }

    /// Current value of `slot`.
    pub fn get(&self, slot: usize) -> usize {
        self.words[slot].load(Ordering::Acquire)
    }

    /// Number of non-zero roots.
    pub fn live_roots(&self) -> usize {
        self.words
            .iter()
            .filter(|w| w.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// Conservatively scans every slot against `session` — the simulated
    /// `TS-Scan` stack walk. Non-atomic across slots by design, like the
    /// real thing.
    pub fn scan(&self, session: &ScanSession<'_>) {
        for w in self.words.iter() {
            session.scan_word(w.load(Ordering::Acquire));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadscan::master::MasterBuffer;
    use threadscan::{CollectorConfig, Retired};

    fn master(addr: usize, size: usize) -> MasterBuffer {
        MasterBuffer::new(
            vec![unsafe { Retired::from_raw_parts(addr, size, threadscan::retired::noop_drop) }],
            &CollectorConfig::default(),
        )
    }

    #[test]
    fn publish_retract_roundtrip() {
        let s = ShadowStack::new(4);
        let slot = s.publish(0xabc0).unwrap();
        assert_eq!(s.get(slot), 0xabc0);
        assert_eq!(s.live_roots(), 1);
        assert_eq!(s.retract(slot), 0xabc0);
        assert_eq!(s.live_roots(), 0);
    }

    #[test]
    fn publish_fails_when_full() {
        let s = ShadowStack::new(2);
        s.publish(1).unwrap();
        s.publish(2).unwrap();
        assert_eq!(s.publish(3), None);
    }

    #[test]
    fn scan_marks_published_roots_only() {
        let s = ShadowStack::new(4);
        s.publish(0x1008).unwrap(); // interior pointer into [0x1000,0x1040)
        let mb = master(0x1000, 64);
        let sess = mb.session();
        s.scan(&sess);
        drop(sess);
        assert!(mb.is_marked(0));

        let mb2 = master(0x9000, 64);
        let sess2 = mb2.session();
        s.scan(&sess2);
        drop(sess2);
        assert!(!mb2.is_marked(0));
    }

    #[test]
    fn overwrite_replaces_root() {
        let s = ShadowStack::new(2);
        let slot = s.publish(0x1000).unwrap();
        assert_eq!(s.overwrite(slot, 0x2000), 0x1000);
        assert_eq!(s.get(slot), 0x2000);
    }
}
