//! # ts-simthread — deterministic simulated platform for ThreadScan
//!
//! The real ThreadScan platform (`ts-sigscan`) interrupts threads with POSIX
//! signals and conservatively scans raw stacks; correct, but inherently
//! nondeterministic (dead stack slots, register spills, scheduling). This
//! crate substitutes each piece with an explicit, deterministic equivalent
//! so the *protocol* — buffering, aggregation, marking, sweeping, survivor
//! carry-over, reclaimer handshake — can be tested exhaustively:
//!
//! | paper / sigscan | here |
//! |---|---|
//! | thread stack + registers | [`ShadowStack`]: explicit root words |
//! | POSIX signal delivery | [`SimPlatform::poll`] handshake, or direct scan |
//! | OS guarantees delivery to stalled threads | reclaimer force-scan after a grace period |
//!
//! [`model::run_model`] runs seeded random schedules of the protocol's
//! abstract operations and checks the paper's Lemma 1 (no rooted node is
//! ever freed — asserted inside every node destructor) and Lemma 4 (all
//! unrooted retired nodes are freed within bounded phases).
//!
//! [`mod@explore`] upgrades those checks from randomized to **exhaustive** at
//! small bounds: a DFS scheduler enumerates *every* interleaving of a
//! scenario's choice points, and any failing schedule is replayable from
//! its printed decision string (see `tests/exhaustive.rs` for the named
//! handshake scenarios backing the memory-ordering policy table in the
//! README).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod explore;
pub mod model;
pub mod shadow;
pub mod virtsig;

pub use explore::{
    check, explore, explore_with_config, replay, Chooser, ExploreConfig, ExploreReport,
    RandomChooser, TraceChooser, Violation,
};
pub use model::{run_model, run_model_with, ModelConfig, ModelMachine, ModelReport};
pub use shadow::ShadowStack;
pub use virtsig::{SimMode, SimPlatform, SimRecord, SimToken};
