//! # ts-simthread — deterministic simulated platform for ThreadScan
//!
//! The real ThreadScan platform (`ts-sigscan`) interrupts threads with POSIX
//! signals and conservatively scans raw stacks; correct, but inherently
//! nondeterministic (dead stack slots, register spills, scheduling). This
//! crate substitutes each piece with an explicit, deterministic equivalent
//! so the *protocol* — buffering, aggregation, marking, sweeping, survivor
//! carry-over, reclaimer handshake — can be tested exhaustively:
//!
//! | paper / sigscan | here |
//! |---|---|
//! | thread stack + registers | [`ShadowStack`]: explicit root words |
//! | POSIX signal delivery | [`SimPlatform::poll`] handshake, or direct scan |
//! | OS guarantees delivery to stalled threads | reclaimer force-scan after a grace period |
//!
//! [`model::run_model`] runs seeded random schedules of the protocol's
//! abstract operations and checks the paper's Lemma 1 (no rooted node is
//! ever freed — asserted inside every node destructor) and Lemma 4 (all
//! unrooted retired nodes are freed within bounded phases).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod model;
pub mod shadow;
pub mod virtsig;

pub use model::{run_model, ModelConfig, ModelReport};
pub use shadow::ShadowStack;
pub use virtsig::{SimMode, SimPlatform, SimRecord, SimToken};
