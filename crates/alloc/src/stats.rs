//! Allocator counters (relaxed; diagnostics and benches only).

use core::sync::atomic::{AtomicUsize, Ordering};

use crate::size_classes::{NUM_CLASSES, SPAN_BYTES};

/// Process-global allocator counters.
pub(crate) struct Counters {
    small_allocs: AtomicUsize,
    small_frees: AtomicUsize,
    large_allocs: AtomicUsize,
    large_frees: AtomicUsize,
    spans: AtomicUsize,
    cache_fills: AtomicUsize,
    cache_flushes: AtomicUsize,
    class_allocs: [AtomicUsize; NUM_CLASSES],
    class_frees: [AtomicUsize; NUM_CLASSES],
}

pub(crate) static COUNTERS: Counters = Counters {
    small_allocs: AtomicUsize::new(0),
    small_frees: AtomicUsize::new(0),
    large_allocs: AtomicUsize::new(0),
    large_frees: AtomicUsize::new(0),
    spans: AtomicUsize::new(0),
    cache_fills: AtomicUsize::new(0),
    cache_flushes: AtomicUsize::new(0),
    class_allocs: [const { AtomicUsize::new(0) }; NUM_CLASSES],
    class_frees: [const { AtomicUsize::new(0) }; NUM_CLASSES],
};

impl Counters {
    #[inline]
    pub(crate) fn note_small_alloc(&self) {
        self.small_allocs.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn note_small_free(&self) {
        self.small_frees.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn note_large_alloc(&self) {
        self.large_allocs.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn note_large_free(&self) {
        self.large_frees.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn note_span(&self) {
        self.spans.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn note_fill(&self) {
        self.cache_fills.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn note_flush(&self) {
        self.cache_flushes.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn note_class_alloc(&self, class: usize) {
        self.class_allocs[class].fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn note_class_free(&self, class: usize) {
        self.class_frees[class].fetch_add(1, Ordering::Relaxed);
    }
}

/// A snapshot of the allocator's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Small (size-class) allocations served.
    pub small_allocs: usize,
    /// Small blocks freed.
    pub small_frees: usize,
    /// Large (passthrough) allocations.
    pub large_allocs: usize,
    /// Large frees.
    pub large_frees: usize,
    /// Spans carved from the system allocator.
    pub spans: usize,
    /// Bytes reserved in spans.
    pub span_bytes: usize,
    /// Thread-cache refills from the depot (each one lock acquisition).
    pub cache_fills: usize,
    /// Thread-cache flushes to the depot.
    pub cache_flushes: usize,
    /// Allocations per size class (indexed like
    /// [`crate::size_classes::class_size`]). Covers both the global hook
    /// and the node pools.
    pub class_allocs: [usize; NUM_CLASSES],
    /// Frees per size class.
    pub class_frees: [usize; NUM_CLASSES],
}

/// Reads the current allocator counters.
pub fn stats() -> AllocStats {
    let spans = COUNTERS.spans.load(Ordering::Relaxed);
    let mut class_allocs = [0usize; NUM_CLASSES];
    let mut class_frees = [0usize; NUM_CLASSES];
    for c in 0..NUM_CLASSES {
        class_allocs[c] = COUNTERS.class_allocs[c].load(Ordering::Relaxed);
        class_frees[c] = COUNTERS.class_frees[c].load(Ordering::Relaxed);
    }
    AllocStats {
        small_allocs: COUNTERS.small_allocs.load(Ordering::Relaxed),
        small_frees: COUNTERS.small_frees.load(Ordering::Relaxed),
        large_allocs: COUNTERS.large_allocs.load(Ordering::Relaxed),
        large_frees: COUNTERS.large_frees.load(Ordering::Relaxed),
        spans,
        span_bytes: spans * SPAN_BYTES,
        cache_fills: COUNTERS.cache_fills.load(Ordering::Relaxed),
        cache_flushes: COUNTERS.cache_flushes.load(Ordering::Relaxed),
        class_allocs,
        class_frees,
    }
}

impl AllocStats {
    /// Small allocations per depot lock acquisition — the amortization
    /// the thread-cache design exists to provide.
    pub fn allocs_per_lock(&self) -> f64 {
        let locks = self.cache_fills + self.cache_flushes;
        if locks == 0 {
            0.0
        } else {
            self.small_allocs as f64 / locks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_monotone_under_activity() {
        let before = stats();
        COUNTERS.note_small_alloc();
        COUNTERS.note_span();
        let after = stats();
        assert!(after.small_allocs > before.small_allocs);
        assert!(after.spans > before.spans);
        assert_eq!(after.span_bytes, after.spans * SPAN_BYTES);
    }

    #[test]
    fn allocs_per_lock_handles_zero() {
        let s = AllocStats {
            small_allocs: 0,
            small_frees: 0,
            large_allocs: 0,
            large_frees: 0,
            spans: 0,
            span_bytes: 0,
            cache_fills: 0,
            cache_flushes: 0,
            class_allocs: [0; NUM_CLASSES],
            class_frees: [0; NUM_CLASSES],
        };
        assert_eq!(s.allocs_per_lock(), 0.0);
    }

    #[test]
    fn class_counters_track_their_class() {
        let before = stats();
        COUNTERS.note_class_alloc(3);
        COUNTERS.note_class_alloc(3);
        COUNTERS.note_class_free(3);
        let after = stats();
        assert_eq!(after.class_allocs[3], before.class_allocs[3] + 2);
        assert_eq!(after.class_frees[3], before.class_frees[3] + 1);
    }
}
