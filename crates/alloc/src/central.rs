//! The central depot: per-class free lists shared by all threads.
//!
//! Thread caches interact with the depot only in batches, so the spinlock
//! here is acquired once per [`BATCH`] thread-local operations. When a
//! class runs dry the depot carves a fresh 64 KiB span from the system
//! allocator into class-sized objects.

use core::ptr;
use std::alloc::{GlobalAlloc, Layout, System};

use crate::size_classes::{class_size, NUM_CLASSES, SPAN_BYTES};
use crate::spin::SpinLock;
use crate::stats::COUNTERS;

/// Objects moved per thread-cache fill/flush.
pub const BATCH: usize = 32;

/// An intrusive LIFO free list: each free block's first word is the next
/// pointer. Blocks are at least 16 bytes, so the word always fits.
pub struct FreeList {
    head: *mut u8,
    len: usize,
}

// SAFETY: raw pointers to free blocks; the owning lock serializes access.
unsafe impl Send for FreeList {}

impl FreeList {
    /// An empty list.
    pub const fn new() -> Self {
        Self {
            head: ptr::null_mut(),
            len: 0,
        }
    }

    /// Blocks currently on the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head.is_null()
    }

    /// Pushes a free block.
    ///
    /// # Safety
    ///
    /// `block` must be a live, exclusively-owned allocation of at least a
    /// word, not already on any list.
    #[inline]
    pub unsafe fn push(&mut self, block: *mut u8) {
        (block as *mut *mut u8).write(self.head);
        self.head = block;
        self.len += 1;
    }

    /// Pops a block, or null when empty.
    #[inline]
    pub fn pop(&mut self) -> *mut u8 {
        let block = self.head;
        if !block.is_null() {
            // SAFETY: `block` was pushed by `push`, which stored the next
            // pointer in its first word.
            self.head = unsafe { (block as *const *mut u8).read() };
            self.len -= 1;
        }
        block
    }
}

impl Default for FreeList {
    fn default() -> Self {
        Self::new()
    }
}

/// The depot: one locked free list per class.
struct Depot {
    classes: [SpinLock<FreeList>; NUM_CLASSES],
}

static DEPOT: Depot = Depot {
    classes: [const { SpinLock::new(FreeList::new()) }; NUM_CLASSES],
};

/// Carves a fresh span from the system allocator into `class` objects and
/// pushes them onto `list`.
///
/// Spans are never returned to the OS (TCMalloc's strategy); memory
/// recycles through the class lists for the process lifetime.
fn grow(class: usize, list: &mut FreeList) {
    let size = class_size(class);
    // SAFETY: SPAN_BYTES/16 is a valid non-zero layout.
    let span = unsafe { System.alloc(Layout::from_size_align_unchecked(SPAN_BYTES, 16)) };
    if span.is_null() {
        return; // OOM propagates as a null pop to the caller
    }
    COUNTERS.note_span();
    let objects = SPAN_BYTES / size;
    for i in 0..objects {
        // SAFETY: each object is a disjoint `size`-byte block inside the
        // fresh span.
        unsafe { list.push(span.add(i * size)) };
    }
}

/// Fills `out` with up to [`BATCH`] blocks of `class`, growing the depot
/// if needed. Returns how many blocks were delivered (0 only on OOM).
pub fn fill(class: usize, out: &mut FreeList) -> usize {
    let mut depot = DEPOT.classes[class].lock();
    if depot.len() < BATCH {
        grow(class, &mut depot);
    }
    let mut moved = 0;
    while moved < BATCH {
        let block = depot.pop();
        if block.is_null() {
            break;
        }
        // SAFETY: block came off the depot list; exclusively ours now.
        unsafe { out.push(block) };
        moved += 1;
    }
    moved
}

/// Returns `n` blocks from `from` (a thread cache list) to the depot.
pub fn flush(class: usize, from: &mut FreeList, n: usize) {
    let mut depot = DEPOT.classes[class].lock();
    for _ in 0..n {
        let block = from.pop();
        if block.is_null() {
            break;
        }
        // SAFETY: block came off the cache list; exclusively ours.
        unsafe { depot.push(block) };
    }
}

/// Allocates one block of `class` directly from the depot (slow path used
/// when thread-local storage is unavailable, e.g. during TLS teardown).
pub fn alloc_direct(class: usize) -> *mut u8 {
    let mut depot = DEPOT.classes[class].lock();
    if depot.is_empty() {
        grow(class, &mut depot);
    }
    depot.pop()
}

/// Frees one block of `class` directly to the depot (slow path).
///
/// # Safety
///
/// `block` must have been allocated from this depot with class `class`.
pub unsafe fn free_direct(class: usize, block: *mut u8) {
    DEPOT.classes[class].lock().push(block);
}

/// Blocks currently parked in the depot for `class` (diagnostics).
pub fn depot_len(class: usize) -> usize {
    DEPOT.classes[class].lock().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_classes::class_of;

    #[test]
    fn freelist_is_lifo_and_counts() {
        let mut list = FreeList::new();
        assert!(list.is_empty());
        assert!(list.pop().is_null());
        let blocks: Vec<Box<[u8; 32]>> = (0..4).map(|_| Box::new([0; 32])).collect();
        let raw: Vec<*mut u8> = blocks
            .iter()
            .map(|b| b.as_ref() as *const _ as *mut u8)
            .collect();
        for &p in &raw {
            // SAFETY: distinct live blocks, ≥ one word.
            unsafe { list.push(p) };
        }
        assert_eq!(list.len(), 4);
        for &p in raw.iter().rev() {
            assert_eq!(list.pop(), p);
        }
        assert!(list.is_empty());
    }

    #[test]
    fn fill_delivers_a_batch_and_grows_spans() {
        let class = class_of(64).unwrap();
        let mut local = FreeList::new();
        let got = fill(class, &mut local);
        assert_eq!(got, BATCH);
        assert_eq!(local.len(), BATCH);
        // Every delivered block is distinct and class-aligned.
        let mut seen = std::collections::HashSet::new();
        loop {
            let b = local.pop();
            if b.is_null() {
                break;
            }
            assert_eq!(b as usize % 16, 0);
            assert!(seen.insert(b as usize), "duplicate block from fill");
        }
        // Give them back so other tests see a sane depot.
        let mut back = FreeList::new();
        for &b in &seen {
            unsafe { back.push(b as *mut u8) };
        }
        flush(class, &mut back, seen.len());
    }

    #[test]
    fn direct_alloc_free_roundtrip() {
        let class = class_of(128).unwrap();
        let a = alloc_direct(class);
        assert!(!a.is_null());
        // SAFETY: block is ours; writing within class_size is in bounds.
        unsafe {
            a.write_bytes(0xCD, 128);
            free_direct(class, a);
        }
        // The depot hands the same block back eventually (LIFO: next).
        let b = alloc_direct(class);
        assert_eq!(b, a, "LIFO depot returns the just-freed block");
        unsafe { free_direct(class, b) };
    }

    #[test]
    fn flush_moves_exactly_n() {
        let class = class_of(48).unwrap();
        let mut local = FreeList::new();
        let got = fill(class, &mut local);
        assert!(got >= 2);
        let before_depot = depot_len(class);
        flush(class, &mut local, 2);
        assert_eq!(depot_len(class), before_depot + 2);
        assert_eq!(local.len(), got - 2);
        let n = local.len();
        flush(class, &mut local, n + 100); // over-ask: drains what's there
        assert!(local.is_empty());
    }
}
