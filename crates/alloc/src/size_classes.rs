//! Size-class table and lookup.
//!
//! Small allocations round up to one of these classes. All classes are
//! multiples of 16, so any block satisfies alignment ≤ 16 — larger
//! alignments bypass the class machinery entirely. The progression is
//! TCMalloc-ish: 16-byte steps up to 128, then geometric-ish steps that
//! keep worst-case internal fragmentation under ~25%.

/// The size classes, ascending. Each is a multiple of 16.
pub const CLASSES: [usize; 28] = [
    16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024,
    1280, 1536, 1792, 2048, 2560, 3072, 3584, 4096,
];

/// Number of size classes.
pub const NUM_CLASSES: usize = CLASSES.len();

/// Largest size served by the class machinery; bigger goes to the system
/// allocator.
pub const MAX_SMALL: usize = CLASSES[NUM_CLASSES - 1];

/// Alignment guaranteed by every class block.
pub const CLASS_ALIGN: usize = 16;

/// Span size carved from the system allocator when a class runs dry.
pub const SPAN_BYTES: usize = 64 * 1024;

/// Size-to-class lookup table, one entry per 16-byte step.
/// `CLASS_FOR_STEP[(size + 15) / 16]` is the class index for `size`
/// (index 0, size 0, maps to class 0 like any 1..=16 request).
static CLASS_FOR_STEP: [u8; MAX_SMALL / 16 + 1] = build_step_table();

const fn build_step_table() -> [u8; MAX_SMALL / 16 + 1] {
    let mut table = [0u8; MAX_SMALL / 16 + 1];
    let mut step = 0;
    while step <= MAX_SMALL / 16 {
        let size = step * 16;
        let mut class = 0;
        while CLASSES[class] < size {
            class += 1;
        }
        table[step] = class as u8;
        step += 1;
    }
    table
}

/// The class index serving `size` bytes, or `None` for large requests.
#[inline]
pub fn class_of(size: usize) -> Option<usize> {
    if size > MAX_SMALL {
        return None;
    }
    Some(CLASS_FOR_STEP[size.div_ceil(16)] as usize)
}

/// The block size of class `class`.
#[inline]
pub fn class_size(class: usize) -> usize {
    CLASSES[class]
}

/// Objects per span for class `class`.
#[inline]
pub fn objects_per_span(class: usize) -> usize {
    SPAN_BYTES / CLASSES[class]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_ascending_multiples_of_sixteen() {
        for w in CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in &CLASSES {
            assert_eq!(c % CLASS_ALIGN, 0);
        }
    }

    #[test]
    fn class_of_rounds_up_and_fits() {
        for size in 1..=MAX_SMALL {
            let class = class_of(size).expect("small size must have a class");
            assert!(
                class_size(class) >= size,
                "class {class} ({}) too small for {size}",
                class_size(class)
            );
            if class > 0 {
                assert!(
                    class_size(class - 1) < size,
                    "size {size} should use the smaller class {}",
                    class - 1
                );
            }
        }
    }

    #[test]
    fn zero_and_boundaries() {
        assert_eq!(class_of(0), Some(0));
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(17), Some(1));
        assert_eq!(class_of(MAX_SMALL), Some(NUM_CLASSES - 1));
        assert_eq!(class_of(MAX_SMALL + 1), None);
    }

    #[test]
    fn fragmentation_is_bounded() {
        // Worst-case internal fragmentation stays under 50% overall and
        // under 25% past 128 bytes (the geometric region's design goal).
        for size in 1..=MAX_SMALL {
            let alloc = class_size(class_of(size).unwrap());
            let waste = (alloc - size) as f64 / alloc as f64;
            if size > 128 {
                assert!(waste < 0.25, "size {size} wastes {waste:.2} in {alloc}");
            } else {
                assert!(waste < 0.94, "tiny sizes bounded by the 16B class");
            }
        }
    }

    #[test]
    fn spans_hold_a_sensible_object_count() {
        assert_eq!(objects_per_span(0), SPAN_BYTES / 16);
        assert_eq!(objects_per_span(NUM_CLASSES - 1), 16);
        for class in 0..NUM_CLASSES {
            assert!(objects_per_span(class) >= 16);
        }
    }
}
