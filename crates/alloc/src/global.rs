//! The [`GlobalAlloc`] front end.
//!
//! Dispatch is purely on `Layout` — `GlobalAlloc`'s contract guarantees
//! `dealloc` receives the same layout `alloc` was called with, so no
//! per-block metadata or page map is needed: small layouts (≤ 4 KiB,
//! align ≤ 16) go through the class machinery, everything else through
//! the system allocator.

use std::alloc::{GlobalAlloc, Layout, System};

use crate::cache;
use crate::size_classes::{class_of, CLASS_ALIGN};
use crate::stats::COUNTERS;

/// The thread-caching allocator. Install with
/// `#[global_allocator] static A: TsAlloc = TsAlloc;`
/// or call the `GlobalAlloc` methods explicitly.
pub struct TsAlloc;

/// Whether `layout` is served by the size-class machinery.
#[inline]
fn small_class(layout: Layout) -> Option<usize> {
    if layout.align() > CLASS_ALIGN {
        return None;
    }
    class_of(layout.size().max(1))
}

// SAFETY: `alloc` returns blocks that satisfy `layout` (classes are
// multiples of 16 and at least the requested size; passthrough delegates
// to System), and `dealloc` routes each block back by the identical
// layout dispatch.
unsafe impl GlobalAlloc for TsAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        match small_class(layout) {
            Some(class) => cache::alloc(class),
            None => {
                COUNTERS.note_large_alloc();
                System.alloc(layout)
            }
        }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        match small_class(layout) {
            Some(class) => cache::free(class, ptr),
            None => {
                COUNTERS.note_large_free();
                System.dealloc(ptr, layout);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(size: usize, align: usize) -> Layout {
        Layout::from_size_align(size, align).unwrap()
    }

    #[test]
    fn small_layouts_map_to_classes() {
        assert!(small_class(layout(1, 1)).is_some());
        assert!(small_class(layout(64, 8)).is_some());
        assert!(small_class(layout(4096, 16)).is_some());
        assert!(small_class(layout(4097, 8)).is_none(), "too big");
        assert!(small_class(layout(64, 32)).is_none(), "over-aligned");
    }

    #[test]
    fn alloc_respects_layout_and_roundtrips() {
        let a = TsAlloc;
        for (size, align) in [(1, 1), (24, 8), (100, 4), (512, 16), (5000, 8), (64, 64)] {
            let l = layout(size, align);
            // SAFETY: valid layout; block written within bounds then freed
            // with the same layout.
            unsafe {
                let p = a.alloc(l);
                assert!(!p.is_null());
                assert_eq!(p as usize % align, 0, "alignment for {size}/{align}");
                p.write_bytes(0xA5, size);
                assert_eq!(p.read(), 0xA5);
                a.dealloc(p, l);
            }
        }
    }

    #[test]
    fn distinct_live_blocks_dont_alias() {
        let a = TsAlloc;
        let l = layout(40, 8);
        // SAFETY: every block freed with its allocation layout.
        unsafe {
            let blocks: Vec<*mut u8> = (0..64).map(|_| a.alloc(l)).collect();
            for (i, &p) in blocks.iter().enumerate() {
                p.write_bytes(i as u8, 40);
            }
            for (i, &p) in blocks.iter().enumerate() {
                assert_eq!(p.read(), i as u8, "block {i} clobbered");
                a.dealloc(p, l);
            }
        }
    }

    #[test]
    fn zero_size_allocations_are_served() {
        // Rust never passes size 0 through GlobalAlloc, but the class
        // mapping should still be total for size 1 after the max(1).
        let a = TsAlloc;
        let l = layout(1, 1);
        // SAFETY: freed with the same layout.
        unsafe {
            let p = a.alloc(l);
            assert!(!p.is_null());
            a.dealloc(p, l);
        }
    }

    #[test]
    fn cross_thread_free_is_sound() {
        // Allocate here, free on another thread: blocks migrate through
        // that thread's cache to the depot and back out safely.
        let a = TsAlloc;
        let l = layout(64, 8);
        // SAFETY: blocks handed to the other thread by value; freed once.
        unsafe {
            let blocks: Vec<usize> = (0..100).map(|_| a.alloc(l) as usize).collect();
            std::thread::spawn(move || {
                let a = TsAlloc;
                for p in blocks {
                    a.dealloc(p as *mut u8, Layout::from_size_align(64, 8).unwrap());
                }
            })
            .join()
            .unwrap();
            // Re-allocate plenty; must not crash or alias live data.
            let again: Vec<*mut u8> = (0..100).map(|_| a.alloc(l)).collect();
            for p in again {
                a.dealloc(p, l);
            }
        }
    }
}
