//! Per-structure node pools: explicit allocation handles over the
//! size-class machinery.
//!
//! The global-hook path ([`crate::TsAlloc`]) routes *every* allocation in
//! the process through the size classes. A [`PoolHandle`] is the opposite
//! end of the design space: an explicit, per-data-structure handle whose
//! `alloc_node::<T>()`/[`dealloc_node`] entry points go straight to the
//! thread-local magazines and the central depot — no `GlobalAlloc`
//! dispatch, no layout round-trip, and per-handle accounting (allocs,
//! frees, magazine refills, bytes resident) that the benchmark harness
//! reads per structure instead of per process.
//!
//! Layout: every pooled node is preceded by a 16-byte `Header` recording
//! its size class and the owning handle's counters. Deferred frees
//! (SMR `retire` drop functions are plain `unsafe fn(*mut u8)` with no
//! captured state) recover everything they need from the header, so a
//! node allocated through any handle can be freed from any thread at any
//! later time with just its pointer.
//!
//! Thread-local **magazines** (one intrusive free list per size class,
//! shared by all handles on that thread — blocks of one class are fungible)
//! refill from and flush to [`central`] in batches, mirroring the global
//! hook's thread-cache amortization. During TLS teardown the magazines are
//! unavailable and the depot's direct path is used instead.
//!
//! Handle counters are leaked (`&'static`): a few words per handle ever
//! created, in exchange for deferred frees never racing a handle drop.

use core::cell::UnsafeCell;
use core::marker::PhantomData;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::Mutex;

use crate::central::{self, FreeList, BATCH};
use crate::size_classes::{class_of, class_size, CLASS_ALIGN, NUM_CLASSES};
use crate::stats::COUNTERS;

/// Bytes of bookkeeping preceding every pooled node. 16 keeps the payload
/// on the same alignment the size classes guarantee.
pub const HEADER_BYTES: usize = 16;

/// Class tag for allocations too large for any size class (served by the
/// system allocator, but still headered and counted).
const LARGE_CLASS: u32 = u32::MAX;

/// Flush a magazine past this many blocks (same hysteresis band as the
/// global hook's thread cache).
const FLUSH_WATERMARK: usize = BATCH * 2;

/// Bookkeeping stored immediately before each pooled node.
#[repr(C)]
struct Header {
    /// The owning handle's counters; `'static` by construction.
    counters: *const PoolCounters,
    /// Size-class index, or [`LARGE_CLASS`] for system-allocator blocks.
    class: u32,
    /// Total allocation size including this header (used to rebuild the
    /// layout of large blocks; informational for class blocks).
    size: u32,
}

/// Per-handle counters (relaxed; diagnostics and benches only). Leaked on
/// handle creation so deferred frees can update them forever.
pub struct PoolCounters {
    name: &'static str,
    allocs: AtomicUsize,
    frees: AtomicUsize,
    magazine_refills: AtomicUsize,
    bytes_resident: AtomicUsize,
}

/// Bytes currently resident across *all* pool handles in the process —
/// the allocator-pressure signal adaptive collect policies subscribe to.
static POOL_BYTES_RESIDENT: AtomicUsize = AtomicUsize::new(0);

/// Every handle's counters ever created, for [`pool_stats`].
static REGISTRY: Mutex<Vec<&'static PoolCounters>> = Mutex::new(Vec::new());

/// A point-in-time copy of one handle's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// The label the handle was created with.
    pub name: &'static str,
    /// Nodes handed out by `alloc_node`.
    pub allocs: usize,
    /// Nodes returned through `dealloc_node`.
    pub frees: usize,
    /// Magazine refills from the central depot (each one lock acquisition)
    /// attributed to this handle's allocations.
    pub magazine_refills: usize,
    /// Bytes currently resident (allocated minus freed, in block sizes).
    pub bytes_resident: usize,
}

impl PoolCounters {
    fn snapshot(&self) -> PoolStats {
        PoolStats {
            name: self.name,
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            magazine_refills: self.magazine_refills.load(Ordering::Relaxed),
            bytes_resident: self.bytes_resident.load(Ordering::Relaxed),
        }
    }
}

/// Snapshots of every pool handle ever created, in creation order.
pub fn pool_stats() -> Vec<PoolStats> {
    REGISTRY
        .lock()
        .expect("pool registry poisoned")
        .iter()
        .map(|c| c.snapshot())
        .collect()
}

/// Bytes currently resident across all pool handles (process-wide).
/// Cheap (one relaxed load): safe to poll from hot paths such as an
/// adaptive collect trigger.
pub fn pool_bytes_resident() -> usize {
    POOL_BYTES_RESIDENT.load(Ordering::Relaxed)
}

/// An explicit allocation handle, typically one per data structure.
///
/// Cloning is free (the handle is one pointer to leaked counters); clones
/// share the same accounting. Deallocation does not need the handle at
/// all — see [`dealloc_node`].
///
/// ```
/// use ts_alloc::pool::{dealloc_node, PoolHandle};
///
/// let pool = PoolHandle::new("example");
/// let p: *mut [u64; 4] = pool.alloc_node([1, 2, 3, 4]);
/// // SAFETY: freshly allocated above, freed exactly once.
/// unsafe {
///     assert_eq!((*p)[2], 3);
///     dealloc_node(p);
/// }
/// let s = pool.stats();
/// assert_eq!((s.allocs, s.frees, s.bytes_resident), (1, 1, 0));
/// ```
#[derive(Clone, Copy)]
pub struct PoolHandle {
    counters: &'static PoolCounters,
}

impl core::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PoolHandle")
            .field("name", &self.counters.name)
            .finish_non_exhaustive()
    }
}

/// Monomorphization-time guard: pooled blocks only guarantee 16-byte
/// alignment, so over-aligned node types must not go through a pool.
struct AlignCheck<T>(PhantomData<T>);
impl<T> AlignCheck<T> {
    const OK: () = assert!(
        core::mem::align_of::<T>() <= CLASS_ALIGN,
        "pooled node types must not require alignment above 16"
    );
}

impl PoolHandle {
    /// Creates a handle labeled `name` (shown in [`pool_stats`]). The
    /// label and counters are leaked — a few words per handle ever
    /// created — so deferred frees can outlive the handle.
    pub fn new(name: impl Into<String>) -> Self {
        let counters: &'static PoolCounters = Box::leak(Box::new(PoolCounters {
            name: String::leak(name.into()),
            allocs: AtomicUsize::new(0),
            frees: AtomicUsize::new(0),
            magazine_refills: AtomicUsize::new(0),
            bytes_resident: AtomicUsize::new(0),
        }));
        REGISTRY
            .lock()
            .expect("pool registry poisoned")
            .push(counters);
        Self { counters }
    }

    /// The handle's label.
    pub fn name(&self) -> &'static str {
        self.counters.name
    }

    /// A snapshot of this handle's counters.
    pub fn stats(&self) -> PoolStats {
        self.counters.snapshot()
    }

    /// Allocates a node holding `value`, headered for a later
    /// [`dealloc_node`] from any thread. Never returns null (aborts on
    /// OOM, like `Box::new`).
    pub fn alloc_node<T>(&self, value: T) -> *mut T {
        let () = AlignCheck::<T>::OK;
        let total = HEADER_BYTES + core::mem::size_of::<T>();
        let (block, class, resident) = match class_of(total) {
            Some(class) => {
                let block = self.alloc_block(class);
                (block, class as u32, class_size(class))
            }
            None => {
                assert!(total <= u32::MAX as usize, "pooled node too large");
                // SAFETY: total >= HEADER_BYTES > 0; CLASS_ALIGN is a
                // power of two.
                let block =
                    unsafe { System.alloc(Layout::from_size_align_unchecked(total, CLASS_ALIGN)) };
                (block, LARGE_CLASS, total)
            }
        };
        assert!(!block.is_null(), "pool allocation failed (OOM)");
        self.counters.allocs.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_resident
            .fetch_add(resident, Ordering::Relaxed);
        POOL_BYTES_RESIDENT.fetch_add(resident, Ordering::Relaxed);
        // SAFETY: `block` is a fresh allocation of at least `total` bytes;
        // the header occupies the first 16 and the payload starts on a
        // 16-byte boundary (classes and the large path both align to 16).
        unsafe {
            (block as *mut Header).write(Header {
                counters: self.counters,
                class,
                size: total as u32,
            });
            let payload = block.add(HEADER_BYTES) as *mut T;
            payload.write(value);
            payload
        }
    }

    /// One class block from the thread-local magazine, refilling from the
    /// depot when empty (depot direct path during TLS teardown).
    fn alloc_block(&self, class: usize) -> *mut u8 {
        COUNTERS.note_small_alloc();
        COUNTERS.note_class_alloc(class);
        with_magazines(|mags| {
            let list = &mut mags.lists[class];
            let block = list.pop();
            if !block.is_null() {
                return block;
            }
            central::fill(class, list);
            COUNTERS.note_fill();
            self.counters
                .magazine_refills
                .fetch_add(1, Ordering::Relaxed);
            list.pop()
        })
        .unwrap_or_else(|| central::alloc_direct(class))
    }
}

/// Drops a pooled node in place and returns its block to the pool.
///
/// Needs no handle: the header in front of the node records its class and
/// owning counters, which is what lets SMR drop functions (stateless
/// `unsafe fn(*mut u8)`) free pooled nodes long after the allocating
/// scope ended.
///
/// # Safety
///
/// `ptr` came from [`PoolHandle::alloc_node`] with the same `T` and is
/// freed at most once; no other reference to the node exists.
pub unsafe fn dealloc_node<T>(ptr: *mut T) {
    core::ptr::drop_in_place(ptr);
    dealloc_block(ptr as *mut u8);
}

/// Returns an already-dropped pooled block (payload pointer) to its pool.
///
/// # Safety
///
/// Same as [`dealloc_node`], with the payload's destructor already run
/// (or trivial).
unsafe fn dealloc_block(payload: *mut u8) {
    let block = payload.sub(HEADER_BYTES);
    let header = (block as *const Header).read();
    // SAFETY: counters are leaked at handle creation, hence still live.
    let counters = &*header.counters;
    counters.frees.fetch_add(1, Ordering::Relaxed);
    if header.class == LARGE_CLASS {
        let total = header.size as usize;
        counters.bytes_resident.fetch_sub(total, Ordering::Relaxed);
        POOL_BYTES_RESIDENT.fetch_sub(total, Ordering::Relaxed);
        // SAFETY: allocated in `alloc_node` with exactly this layout.
        System.dealloc(block, Layout::from_size_align_unchecked(total, CLASS_ALIGN));
        return;
    }
    let class = header.class as usize;
    counters
        .bytes_resident
        .fetch_sub(class_size(class), Ordering::Relaxed);
    POOL_BYTES_RESIDENT.fetch_sub(class_size(class), Ordering::Relaxed);
    COUNTERS.note_small_free();
    COUNTERS.note_class_free(class);
    let done = with_magazines(|mags| {
        let list = &mut mags.lists[class];
        // SAFETY: caller contract — the block is exclusively ours.
        unsafe { list.push(block) };
        if list.len() > FLUSH_WATERMARK {
            central::flush(class, list, BATCH);
            COUNTERS.note_flush();
        }
    });
    if done.is_none() {
        // TLS teardown: hand it straight to the depot.
        central::free_direct(class, block);
    }
}

/// Thread-local per-class magazines, shared by every handle on the thread.
struct Magazines {
    lists: [FreeList; NUM_CLASSES],
}

impl Magazines {
    const fn new() -> Self {
        Self {
            lists: [const { FreeList::new() }; NUM_CLASSES],
        }
    }
}

/// Flushes every magazine back to the depot at thread exit.
struct MagazineGuard(UnsafeCell<Magazines>);

impl Drop for MagazineGuard {
    fn drop(&mut self) {
        let mags = self.0.get_mut();
        for (class, list) in mags.lists.iter_mut().enumerate() {
            let n = list.len();
            if n > 0 {
                central::flush(class, list, n);
                COUNTERS.note_flush();
            }
        }
    }
}

thread_local! {
    static MAGAZINES: MagazineGuard = const { MagazineGuard(UnsafeCell::new(Magazines::new())) };
}

/// Runs `f` with the thread's magazines, or `None` during TLS teardown.
#[inline]
fn with_magazines<R>(f: impl FnOnce(&mut Magazines) -> R) -> Option<R> {
    MAGAZINES
        .try_with(|guard| {
            // SAFETY: strictly thread-local; `f` cannot reenter (nothing
            // on this path allocates through the magazines).
            f(unsafe { &mut *guard.0.get() })
        })
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_balances_counters() {
        let pool = PoolHandle::new("roundtrip");
        let mut live: Vec<*mut [u8; 40]> =
            (0..64).map(|i| pool.alloc_node([i as u8; 40])).collect();
        let s = pool.stats();
        assert_eq!(s.allocs, 64);
        assert_eq!(s.frees, 0);
        let class = class_of(HEADER_BYTES + 40).unwrap();
        assert_eq!(s.bytes_resident, 64 * class_size(class));
        for p in live.drain(..) {
            // SAFETY: allocated above, freed once.
            unsafe { dealloc_node(p) };
        }
        let s = pool.stats();
        assert_eq!(s.allocs, s.frees);
        assert_eq!(s.bytes_resident, 0);
    }

    #[test]
    fn values_survive_and_blocks_are_distinct() {
        let pool = PoolHandle::new("distinct");
        let ptrs: Vec<*mut u64> = (0..200u64).map(|i| pool.alloc_node(i * 3)).collect();
        let mut seen = std::collections::HashSet::new();
        for (i, &p) in ptrs.iter().enumerate() {
            // SAFETY: live allocation from above.
            assert_eq!(unsafe { *p }, i as u64 * 3);
            assert!(seen.insert(p as usize), "double-handed block");
            assert_eq!(p as usize % CLASS_ALIGN, 0, "payload must be aligned");
        }
        for p in ptrs {
            unsafe { dealloc_node(p) };
        }
    }

    #[test]
    fn dealloc_without_handle_credits_the_owner() {
        // The deferred-free path: allocate here, free from another thread
        // that never saw the handle.
        let pool = PoolHandle::new("deferred");
        let p: *mut u64 = pool.alloc_node(7);
        let addr = p as usize;
        std::thread::spawn(move || {
            // SAFETY: sole owner of the allocation.
            unsafe { dealloc_node(addr as *mut u64) };
        })
        .join()
        .unwrap();
        let s = pool.stats();
        assert_eq!((s.allocs, s.frees, s.bytes_resident), (1, 1, 0));
    }

    #[test]
    fn large_nodes_pass_through_with_accounting() {
        let pool = PoolHandle::new("large");
        let p: *mut [u8; 8192] = pool.alloc_node([0xAB; 8192]);
        let s = pool.stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.bytes_resident, HEADER_BYTES + 8192);
        // SAFETY: allocated above.
        unsafe {
            assert_eq!((*p)[100], 0xAB);
            dealloc_node(p);
        }
        assert_eq!(pool.stats().bytes_resident, 0);
    }

    #[test]
    fn drop_glue_runs_on_dealloc() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Noisy;
        impl Drop for Noisy {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let pool = PoolHandle::new("droppy");
        let p = pool.alloc_node(Noisy);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        // SAFETY: allocated above.
        unsafe { dealloc_node(p) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn global_bytes_resident_tracks_all_pools() {
        let a = PoolHandle::new("global-a");
        let b = PoolHandle::new("global-b");
        let before = pool_bytes_resident();
        let pa: *mut u64 = a.alloc_node(1);
        let pb: *mut u64 = b.alloc_node(2);
        assert!(pool_bytes_resident() >= before + 2 * class_size(0));
        // SAFETY: allocated above.
        unsafe {
            dealloc_node(pa);
            dealloc_node(pb);
        }
        assert_eq!(pool_bytes_resident(), before);
    }

    #[test]
    fn pool_stats_lists_created_handles() {
        let h = PoolHandle::new("listed-handle");
        let p: *mut u64 = h.alloc_node(9);
        // SAFETY: allocated above.
        unsafe { dealloc_node(p) };
        let all = pool_stats();
        let mine = all
            .iter()
            .find(|s| s.name == "listed-handle")
            .expect("handle must appear in pool_stats");
        assert_eq!(mine.allocs, 1);
        assert_eq!(mine.frees, 1);
    }

    #[test]
    fn lifo_reuse_stays_magazine_local() {
        let pool = PoolHandle::new("lifo");
        // Warm the magazine.
        let warm: *mut u64 = pool.alloc_node(0);
        // SAFETY: allocated above.
        unsafe { dealloc_node(warm) };
        let refills_before = pool.stats().magazine_refills;
        for i in 0..100u64 {
            let p = pool.alloc_node(i);
            // SAFETY: allocated above.
            unsafe { dealloc_node(p) };
        }
        assert_eq!(
            pool.stats().magazine_refills,
            refills_before,
            "LIFO alloc/free cycles must not touch the depot"
        );
    }
}
