//! A minimal spinlock for allocator internals.
//!
//! `parking_lot`/`std` mutexes may themselves allocate (parker state,
//! poison bookkeeping) — inside a global allocator that is re-entrant
//! death. This lock is two atomics' worth of code, const-constructible,
//! and never allocates. Depot critical sections are a handful of pointer
//! writes, so spinning (with exponential backoff) is appropriate.

use core::cell::UnsafeCell;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, Ordering};

/// A const-constructible, allocation-free spinlock.
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides the usual mutual exclusion.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// A new unlocked value.
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning with backoff.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { lock: self };
            }
            // Read-only wait (avoids CAS cache-line ping-pong), with a
            // yield once we've spun long enough to suspect preemption.
            while self.locked.load(Ordering::Relaxed) {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(256) {
                    std::thread::yield_now();
                } else {
                    core::hint::spin_loop();
                }
            }
        }
    }
}

/// RAII guard; releases on drop.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard implies exclusive access.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard implies exclusive access.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_exclude_each_other() {
        let lock = Arc::new(SpinLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn const_construction_works_in_statics() {
        static L: SpinLock<usize> = SpinLock::new(7);
        assert_eq!(*L.lock(), 7);
        *L.lock() = 9;
        assert_eq!(*L.lock(), 9);
    }
}
