//! Per-thread caches: the allocator's no-atomics fast path.
//!
//! Each thread owns one [`FreeList`] per size class. `alloc` pops from
//! the local list; `free` pushes. Only when a list runs empty (fill) or
//! past its watermark (flush) does the thread touch the shared depot —
//! one lock acquisition per [`BATCH`] operations.
//!
//! TLS teardown: `std::thread_local` destructors flush every cached block
//! back to the depot so exiting threads don't strand memory. If the
//! allocator is called *during* teardown (destructors of other TLS keys
//! may allocate), `with_cache` fails gracefully and the caller falls back
//! to the depot's direct path.

use core::cell::UnsafeCell;

use crate::central::{self, FreeList, BATCH};
use crate::size_classes::NUM_CLASSES;
use crate::stats::COUNTERS;

/// Flush when a class list exceeds this many blocks (2×BATCH keeps a
/// hysteresis band so alloc/free ping-pong doesn't thrash the depot).
const FLUSH_WATERMARK: usize = BATCH * 2;

struct ThreadCache {
    lists: [FreeList; NUM_CLASSES],
}

impl ThreadCache {
    const fn new() -> Self {
        Self {
            lists: [const { FreeList::new() }; NUM_CLASSES],
        }
    }
}

/// Flushes everything back to the depot at thread exit.
struct CacheGuard(UnsafeCell<ThreadCache>);

impl Drop for CacheGuard {
    fn drop(&mut self) {
        let cache = self.0.get_mut();
        for (class, list) in cache.lists.iter_mut().enumerate() {
            let n = list.len();
            if n > 0 {
                central::flush(class, list, n);
                COUNTERS.note_flush();
            }
        }
    }
}

thread_local! {
    static CACHE: CacheGuard = const { CacheGuard(UnsafeCell::new(ThreadCache::new())) };
}

/// Runs `f` with the thread cache, or returns `None` during TLS teardown.
#[inline]
fn with_cache<R>(f: impl FnOnce(&mut ThreadCache) -> R) -> Option<R> {
    CACHE
        .try_with(|guard| {
            // SAFETY: the cache is strictly thread-local and `f` cannot
            // reenter (the allocator never allocates on this path).
            f(unsafe { &mut *guard.0.get() })
        })
        .ok()
}

/// Allocates one block of `class`.
#[inline]
pub fn alloc(class: usize) -> *mut u8 {
    COUNTERS.note_small_alloc();
    COUNTERS.note_class_alloc(class);
    with_cache(|cache| {
        let list = &mut cache.lists[class];
        let block = list.pop();
        if !block.is_null() {
            return block;
        }
        central::fill(class, list);
        COUNTERS.note_fill();
        list.pop()
    })
    .unwrap_or_else(|| central::alloc_direct(class))
}

/// Frees one block of `class`.
///
/// # Safety
///
/// `block` must have been allocated by [`alloc`] (or the depot) with the
/// same `class`, and not freed since.
#[inline]
pub unsafe fn free(class: usize, block: *mut u8) {
    COUNTERS.note_small_free();
    COUNTERS.note_class_free(class);
    let done = with_cache(|cache| {
        let list = &mut cache.lists[class];
        // SAFETY: caller contract.
        list.push(block);
        if list.len() > FLUSH_WATERMARK {
            central::flush(class, list, BATCH);
            COUNTERS.note_flush();
        }
    });
    if done.is_none() {
        // TLS teardown: hand it straight to the depot.
        central::free_direct(class, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_classes::{class_of, class_size};

    #[test]
    fn alloc_free_cycles_stay_local_after_warmup() {
        let class = class_of(64).unwrap();
        // Warm the cache.
        let warm = alloc(class);
        unsafe { free(class, warm) };
        let fills_before = crate::stats().cache_fills;
        for _ in 0..100 {
            let p = alloc(class);
            assert!(!p.is_null());
            unsafe {
                p.write_bytes(0xEE, class_size(class));
                free(class, p);
            }
        }
        let fills_after = crate::stats().cache_fills;
        assert_eq!(
            fills_before, fills_after,
            "LIFO alloc/free cycles must not touch the depot"
        );
    }

    #[test]
    fn blocks_are_distinct_while_live() {
        let class = class_of(32).unwrap();
        let mut live: Vec<*mut u8> = (0..200).map(|_| alloc(class)).collect();
        let mut seen = std::collections::HashSet::new();
        for &p in &live {
            assert!(!p.is_null());
            assert!(seen.insert(p as usize), "double-handed block");
        }
        for p in live.drain(..) {
            unsafe { free(class, p) };
        }
    }

    #[test]
    fn watermark_flush_returns_blocks_to_depot() {
        let class = class_of(96).unwrap();
        // Allocate a pile, then free it all: the cache must flush batches
        // past the watermark rather than hoard indefinitely.
        let live: Vec<*mut u8> = (0..(FLUSH_WATERMARK * 3)).map(|_| alloc(class)).collect();
        let flushes_before = crate::stats().cache_flushes;
        for p in live {
            unsafe { free(class, p) };
        }
        assert!(
            crate::stats().cache_flushes > flushes_before,
            "freeing 3× the watermark must trigger depot flushes"
        );
    }

    #[test]
    fn exiting_thread_returns_its_cache() {
        let class = class_of(256).unwrap();
        let depot_before = central::depot_len(class);
        std::thread::spawn(move || {
            // Populate this thread's cache, then exit while holding blocks.
            let live: Vec<*mut u8> = (0..8).map(|_| alloc(class)).collect();
            for p in live {
                unsafe { free(class, p) };
            }
        })
        .join()
        .unwrap();
        assert!(
            central::depot_len(class) > depot_before,
            "thread exit must flush its cached blocks to the depot"
        );
    }
}
