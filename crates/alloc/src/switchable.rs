//! A runtime-selectable global allocator: system allocator by default,
//! [`TsAlloc`] after a **one-way** switch.
//!
//! `#[global_allocator]` is a compile-time, per-binary choice, but the
//! benchmark binaries want an `--real-alloc` *flag* so one executable can
//! produce both the system-allocator and thread-caching rows. This
//! front end makes that sound with two constraints:
//!
//! * the switch is **one-way**: the process starts on the system
//!   allocator, [`enable_ts_alloc`] flips to [`TsAlloc`] once, and the
//!   flip is permanent;
//! * the system-backed path allocates small layouts **padded to the full
//!   size-class footprint** (`class_size`, `CLASS_ALIGN`-aligned) — the
//!   exact block shape the class machinery hands out.
//!
//! # Why that is sound
//!
//! Dispatch is layout-based on both sides (see [`TsAlloc`]), so the only
//! cross-backend traffic the one-way flip permits is a block *allocated*
//! pre-flip (system path) being *freed* post-flip into a `ts-alloc`
//! class list. Thanks to the padding, such a block is bit-compatible
//! with that class: exactly `class_size` bytes, at least
//! [`CLASS_ALIGN`]-aligned, and exclusively owned — the intrusive
//! free-list link and any future reuse as a class block stay in bounds.
//! (Without the padding this path would be a heap overflow: a 24-byte
//! system block recycled into the 32-byte class hands a later caller 8
//! bytes it does not own.) The blocks migrate pools permanently — they
//! are never returned to the system allocator, a bounded one-time leak
//! of the pre-flip population. The unsound direction — class-machinery
//! memory reaching `System::dealloc` — would require flipping *back*,
//! which the API makes impossible.
//!
//! Flip as early as possible (first thing in `main`) so the pre-flip
//! population, and with it both the padding overhead and the one-time
//! pool migration, stays small.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::global::TsAlloc;
use crate::size_classes::{class_of, class_size, CLASS_ALIGN};

static TS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Permanently routes subsequent allocations of a [`SwitchableAlloc`]
/// binary through [`TsAlloc`]. Idempotent. Call at the top of `main`,
/// before spawning threads or building workloads.
pub fn enable_ts_alloc() {
    TS_ENABLED.store(true, Ordering::SeqCst);
}

/// Whether [`enable_ts_alloc`] has been called.
pub fn ts_alloc_enabled() -> bool {
    TS_ENABLED.load(Ordering::SeqCst)
}

/// The class-footprint layout for `layout`, when the class machinery
/// would serve it; `layout` itself otherwise. Applying this on the
/// system-backed path keeps every small block interchangeable with the
/// class blocks it may be freed among after the flip. Idempotent:
/// a padded layout maps to its own class, so alloc- and dealloc-side
/// dispatch agree whichever side of the flip each runs on.
fn class_footprint(layout: Layout) -> Layout {
    if layout.align() <= CLASS_ALIGN {
        if let Some(class) = class_of(layout.size().max(1)) {
            return Layout::from_size_align(class_size(class), CLASS_ALIGN)
                .expect("class sizes are valid nonzero multiples of 16");
        }
    }
    layout
}

/// The switchable global-allocator front end. Install with
/// `#[global_allocator] static A: SwitchableAlloc = SwitchableAlloc;`
/// and optionally call [`enable_ts_alloc`] at startup.
pub struct SwitchableAlloc;

// SAFETY: both backends satisfy the GlobalAlloc contract (the padded
// layout covers the requested one), and the one-way switch plus the
// class-footprint padding make the only cross-backend path — pre-flip
// system blocks freed into class lists — bit-compatible (see module
// docs). Class-machinery memory never reaches `System::dealloc`.
unsafe impl GlobalAlloc for SwitchableAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TS_ENABLED.load(Ordering::Relaxed) {
            TsAlloc.alloc(layout)
        } else {
            System.alloc(class_footprint(layout))
        }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TS_ENABLED.load(Ordering::Relaxed) {
            TsAlloc.dealloc(ptr, layout)
        } else {
            System.dealloc(ptr, class_footprint(layout))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_classes::MAX_SMALL;

    // NOTE: these tests exercise the front end directly (not installed as
    // the global allocator) so they cannot disturb the test harness.

    #[test]
    fn footprint_matches_the_class_machinery_exactly() {
        for size in 1..=MAX_SMALL {
            for align in [1usize, 2, 4, 8, 16] {
                let l = Layout::from_size_align(size, align).unwrap();
                let p = class_footprint(l);
                let class = class_of(size).unwrap();
                assert_eq!(p.size(), class_size(class), "size {size}/{align}");
                assert_eq!(p.align(), CLASS_ALIGN);
                assert_eq!(
                    class_footprint(p),
                    p,
                    "padding must be idempotent so both dispatch sides agree"
                );
            }
        }
        // Large and over-aligned layouts bypass the classes on both
        // backends and must stay untouched.
        let big = Layout::from_size_align(MAX_SMALL + 1, 8).unwrap();
        assert_eq!(class_footprint(big), big);
        let aligned = Layout::from_size_align(64, 64).unwrap();
        assert_eq!(class_footprint(aligned), aligned);
    }

    /// One test for the whole switch lifecycle: the flag is process-global
    /// state, so splitting phases across `#[test]`s would race under the
    /// parallel test harness.
    #[test]
    fn one_way_flip_sticks_and_routes_to_ts_alloc() {
        assert!(
            !ts_alloc_enabled(),
            "the switch must start off (no other test flips it)"
        );
        let a = SwitchableAlloc;
        let l = Layout::from_size_align(24, 8).unwrap();
        // SAFETY: allocated and freed with the same layout, same (off)
        // flag state; the padded system block is writable for the full
        // class footprint.
        unsafe {
            let p = a.alloc(l);
            assert!(!p.is_null());
            assert_eq!(p as usize % CLASS_ALIGN, 0, "system path pads alignment");
            p.write_bytes(0x5A, 32); // the whole 32-byte class footprint
            a.dealloc(p, l);
        }
        assert!(!ts_alloc_enabled(), "probing must not flip the switch");

        enable_ts_alloc();
        assert!(ts_alloc_enabled());
        enable_ts_alloc(); // idempotent
        assert!(ts_alloc_enabled());

        // The cross-backend path the padding exists for: a block shaped
        // exactly like the pre-flip system path shapes them, freed into
        // the class list, recycled as a class block, and written for
        // every byte the class entitles the new owner to.
        let pre_flip = unsafe { System.alloc(class_footprint(l)) };
        assert!(!pre_flip.is_null());
        let before = crate::stats().small_allocs;
        // SAFETY: `pre_flip` is a live 32-byte, 16-aligned block; freeing
        // it post-flip migrates it into the 32-byte class.
        unsafe {
            SwitchableAlloc.dealloc(pre_flip, l);
            // Draw from the same class until the migrated block cycles
            // back out, proving it serves class-sized requests safely.
            let l32 = Layout::from_size_align(32, 16).unwrap();
            let blocks: Vec<*mut u8> = (0..64).map(|_| SwitchableAlloc.alloc(l32)).collect();
            for &b in &blocks {
                assert!(!b.is_null());
                b.write_bytes(0xA5, 32);
            }
            for b in blocks {
                SwitchableAlloc.dealloc(b, l32);
            }
        }
        assert!(
            crate::stats().small_allocs > before,
            "post-flip small allocations must hit the ts-alloc counters"
        );
    }
}
