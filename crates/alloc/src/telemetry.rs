//! Pool-side metrics: publishes the node-pool accounting into the
//! `ts-telemetry` registry.
//!
//! The pools already keep their own counters ([`crate::pool_stats`],
//! [`crate::pool_bytes_resident`]); this module adds nothing to the
//! allocation hot path. It registers **callback gauges** — plain
//! `fn() -> u64` readers the exporter invokes at render time — so a
//! `/metrics` scrape sees live pool state without the pools ever touching
//! telemetry. Registration is idempotent and opt-in: a process that never
//! calls [`register_pool_metrics`] pays nothing.

use crate::pool::{pool_bytes_resident, pool_stats};

fn bytes_resident() -> u64 {
    pool_bytes_resident() as u64
}

fn allocs() -> u64 {
    pool_stats().iter().map(|s| s.allocs as u64).sum()
}

fn frees() -> u64 {
    pool_stats().iter().map(|s| s.frees as u64).sum()
}

fn magazine_refills() -> u64 {
    pool_stats().iter().map(|s| s.magazine_refills as u64).sum()
}

fn handles() -> u64 {
    pool_stats().len() as u64
}

static BYTES_RESIDENT: ts_telemetry::CallbackGauge =
    ts_telemetry::CallbackGauge::new(bytes_resident);
static ALLOCS: ts_telemetry::CallbackGauge = ts_telemetry::CallbackGauge::new(allocs);
static FREES: ts_telemetry::CallbackGauge = ts_telemetry::CallbackGauge::new(frees);
static REFILLS: ts_telemetry::CallbackGauge = ts_telemetry::CallbackGauge::new(magazine_refills);
static HANDLES: ts_telemetry::CallbackGauge = ts_telemetry::CallbackGauge::new(handles);

/// Registers the node-pool gauges with the process-wide metrics registry.
/// Idempotent; call once wherever telemetry is switched on (the workload
/// registry does this when a scheme is built with telemetry enabled).
pub fn register_pool_metrics() {
    ts_telemetry::register_callback_gauge(
        "threadscan_pool_bytes_resident",
        "Bytes currently resident across all node-pool handles (the adaptive policy's pressure signal).",
        &[],
        &BYTES_RESIDENT,
    );
    ts_telemetry::register_callback_gauge(
        "threadscan_pool_allocs",
        "Node allocations served by pool handles since process start.",
        &[],
        &ALLOCS,
    );
    ts_telemetry::register_callback_gauge(
        "threadscan_pool_frees",
        "Nodes returned to pool handles since process start.",
        &[],
        &FREES,
    );
    ts_telemetry::register_callback_gauge(
        "threadscan_pool_magazine_refills",
        "Thread-local magazine refills from the central depot.",
        &[],
        &REFILLS,
    );
    ts_telemetry::register_callback_gauge(
        "threadscan_pool_handles",
        "Pool handles ever created in this process.",
        &[],
        &HANDLES,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolHandle;

    #[test]
    fn pool_gauges_register_once_and_track_live_state() {
        register_pool_metrics();
        register_pool_metrics(); // idempotent
        let page = ts_telemetry::render_prometheus();
        assert_eq!(
            page.matches("# TYPE threadscan_pool_bytes_resident gauge")
                .count(),
            1,
            "double registration must not duplicate the metric"
        );

        let before_allocs = super::allocs();
        let before_resident = super::bytes_resident();
        let pool = PoolHandle::new("telemetry-test");
        let nodes: Vec<*mut [u8; 48]> = (0..8).map(|_| pool.alloc_node([0u8; 48])).collect();
        assert_eq!(super::allocs() - before_allocs, 8);
        assert!(super::bytes_resident() > before_resident);
        let page = ts_telemetry::render_prometheus();
        assert!(page.contains("threadscan_pool_allocs"));
        for n in nodes {
            unsafe { crate::pool::dealloc_node(n.cast::<u8>()) };
        }
        assert_eq!(super::bytes_resident(), before_resident);
    }
}
