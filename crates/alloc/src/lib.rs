//! # ts-alloc — the evaluation's allocator substrate
//!
//! The paper's §6 setup notes: *"For all tests, we used the highly
//! scalable TCMalloc allocator."* A memory-reclamation benchmark is only
//! as honest as its allocator — with a contended global heap, `free`
//! serializes the very threads whose scalability is being measured. This
//! crate is a from-scratch TCMalloc-shaped allocator providing the same
//! property TCMalloc contributes to the paper's testbed: **malloc/free
//! that do not contend in the common case**.
//!
//! Architecture (a faithful miniature of Ghemawat & Menage's design):
//!
//! * **Size classes** ([`size_classes`]) — small requests round up to one
//!   of ~28 classes, 16 B … 4 KiB, all 16-byte aligned.
//! * **Thread caches** ([`cache`]) — a per-thread array of intrusive
//!   free lists, one per class. Allocation and deallocation are plain
//!   pointer pops/pushes with **no atomics at all** in the hot path.
//! * **Central depot** ([`central`]) — per-class spinlocked free lists
//!   that thread caches fill from / flush to in batches, amortizing the
//!   lock to one acquisition per `BATCH` operations.
//! * **Spans** — the depot grows by carving 64 KiB spans from the system
//!   allocator into objects. Spans live for the process lifetime (as in
//!   TCMalloc, memory is recycled through the class lists, not returned
//!   to the OS).
//! * **Large requests** (> 4 KiB or alignment > 16) pass straight through
//!   to the system allocator; `GlobalAlloc`'s layout contract makes the
//!   dispatch deterministic on both `alloc` and `dealloc`.
//!
//! Use it as a drop-in global allocator:
//!
//! ```
//! use ts_alloc::TsAlloc;
//!
//! // In a binary: #[global_allocator] static ALLOC: TsAlloc = TsAlloc;
//! let stats = ts_alloc::stats();
//! assert_eq!(stats.small_allocs, stats.small_allocs); // counters exposed
//! ```
//!
//! The `ablation_allocator` bench binary runs the paper's list workload
//! with this allocator installed, for comparison against the
//! system-allocator numbers in EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod central;
pub mod global;
pub mod pool;
pub mod size_classes;
pub mod spin;
pub mod stats;
pub mod switchable;
pub mod telemetry;

pub use global::TsAlloc;
pub use pool::{dealloc_node, pool_bytes_resident, pool_stats, PoolHandle, PoolStats};
pub use size_classes::{class_size, NUM_CLASSES};
pub use stats::{stats, AllocStats};
pub use switchable::{enable_ts_alloc, ts_alloc_enabled, SwitchableAlloc};
pub use telemetry::register_pool_metrics;
