//! Property tests for the node-pool handles: arbitrary alloc/dealloc
//! interleavings across size classes against a `HashMap` oracle — live
//! blocks never alias (within or across classes), payloads survive
//! magazine refill/return round-trips untouched, and the per-handle
//! counters balance once everything is freed.

use std::collections::HashMap;

use proptest::prelude::*;
use ts_alloc::pool::{dealloc_node, PoolHandle, HEADER_BYTES};
use ts_alloc::size_classes::{class_of, class_size};

/// One pooled node shape per interesting size region: three small
/// classes, one mid class, and one past `MAX_SMALL` (system passthrough).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    W2,   // 16 B payload  -> class of 32
    W8,   // 64 B payload  -> mid class
    W24,  // 192 B payload -> node-sized class
    W120, // 960 B payload -> large class
    W700, // 5600 B payload -> system passthrough
}

impl Shape {
    fn words(self) -> usize {
        match self {
            Shape::W2 => 2,
            Shape::W8 => 8,
            Shape::W24 => 24,
            Shape::W120 => 120,
            Shape::W700 => 700,
        }
    }

    /// Bytes the pool actually reserves for this shape (block or exact).
    fn resident_bytes(self) -> usize {
        let total = HEADER_BYTES + self.words() * 8;
        match class_of(total) {
            Some(c) => class_size(c),
            None => total,
        }
    }

    fn alloc(self, pool: &PoolHandle, tag: u64) -> usize {
        // Each arm monomorphizes a distinct node type; every word of the
        // payload carries the tag so aliasing clobbers are detectable.
        match self {
            Shape::W2 => pool.alloc_node([tag; 2]) as usize,
            Shape::W8 => pool.alloc_node([tag; 8]) as usize,
            Shape::W24 => pool.alloc_node([tag; 24]) as usize,
            Shape::W120 => pool.alloc_node([tag; 120]) as usize,
            Shape::W700 => pool.alloc_node([tag; 700]) as usize,
        }
    }

    /// Checks every payload word still holds `tag`, then frees the node.
    ///
    /// # Safety
    ///
    /// `addr` came from `alloc` with the same shape and is freed once.
    unsafe fn check_and_free(self, addr: usize, tag: u64) -> bool {
        let words = self.words();
        let p = addr as *const u64;
        for i in 0..words {
            if p.add(i).read() != tag {
                return false;
            }
        }
        match self {
            Shape::W2 => dealloc_node(addr as *mut [u64; 2]),
            Shape::W8 => dealloc_node(addr as *mut [u64; 8]),
            Shape::W24 => dealloc_node(addr as *mut [u64; 24]),
            Shape::W120 => dealloc_node(addr as *mut [u64; 120]),
            Shape::W700 => dealloc_node(addr as *mut [u64; 700]),
        }
        true
    }
}

#[derive(Debug, Clone)]
enum PoolOp {
    Alloc(Shape),
    /// Free the `idx % live`-th live node.
    Free(usize),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::W2),
        Just(Shape::W8),
        Just(Shape::W24),
        Just(Shape::W120),
        Just(Shape::W700),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pool_interleavings_match_oracle(
        ops in proptest::collection::vec(
            prop_oneof![
                shape_strategy().prop_map(PoolOp::Alloc),
                (0usize..64).prop_map(PoolOp::Free),
            ],
            1..250,
        )
    ) {
        let pool = PoolHandle::new("proptest-pool");
        // Oracle: address -> (shape, tag). Insertion order kept separately
        // so Free picks deterministically.
        let mut oracle: HashMap<usize, (Shape, u64)> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        let mut next_tag = 1u64;
        let mut expected_allocs = 0usize;
        let mut expected_frees = 0usize;

        for op in ops {
            match op {
                PoolOp::Alloc(shape) => {
                    let addr = shape.alloc(&pool, next_tag);
                    prop_assert!(addr != 0);
                    prop_assert_eq!(addr % 16, 0, "payload must be 16-aligned");
                    // No aliasing with any live node, same class or not.
                    prop_assert!(
                        oracle.insert(addr, (shape, next_tag)).is_none(),
                        "pool handed out a live address twice"
                    );
                    order.push(addr);
                    next_tag += 1;
                    expected_allocs += 1;
                }
                PoolOp::Free(idx) => {
                    if order.is_empty() {
                        continue;
                    }
                    let addr = order.swap_remove(idx % order.len());
                    let (shape, tag) = oracle.remove(&addr).unwrap();
                    // SAFETY: live node from this run, freed exactly once.
                    prop_assert!(
                        unsafe { shape.check_and_free(addr, tag) },
                        "payload clobbered while live"
                    );
                    expected_frees += 1;
                }
            }
        }

        // Mid-run counters: resident bytes must equal the oracle's notion
        // of what is still live.
        let live_bytes: usize = oracle.values().map(|(s, _)| s.resident_bytes()).sum();
        let mid = pool.stats();
        prop_assert_eq!(mid.allocs, expected_allocs);
        prop_assert_eq!(mid.frees, expected_frees);
        prop_assert_eq!(mid.bytes_resident, live_bytes);

        // Drain the survivors; counters must balance exactly.
        for addr in order {
            let (shape, tag) = oracle.remove(&addr).unwrap();
            // SAFETY: as above.
            prop_assert!(unsafe { shape.check_and_free(addr, tag) });
        }
        let end = pool.stats();
        prop_assert_eq!(end.allocs, end.frees, "counters must balance at drop");
        prop_assert_eq!(end.bytes_resident, 0);
    }

    /// Magazine round-trips: blocks freed to the magazine come back out
    /// on the next allocation of the same class with contents rewritten,
    /// and pure LIFO cycling performs no depot refills after warmup.
    #[test]
    fn magazine_roundtrip_recycles_without_refills(cycles in 10usize..200) {
        let pool = PoolHandle::new("proptest-magazine");
        let warm: *mut [u64; 8] = {
            let p = pool.alloc_node([0u64; 8]);
            // SAFETY: allocated above.
            unsafe { dealloc_node(p) };
            p
        };
        let refills_after_warmup = pool.stats().magazine_refills;
        for i in 0..cycles {
            let p: *mut [u64; 8] = pool.alloc_node([i as u64; 8]);
            // LIFO magazine: the warm block keeps coming back.
            prop_assert_eq!(p, warm);
            // SAFETY: allocated above.
            unsafe {
                prop_assert_eq!((*p)[7], i as u64);
                dealloc_node(p);
            }
        }
        prop_assert_eq!(pool.stats().magazine_refills, refills_after_warmup);
    }
}
