//! Property tests: arbitrary alloc/free interleavings through the
//! `GlobalAlloc` facade behave like an allocator should — no aliasing
//! between live blocks, contents stable until free, any free order.

use std::alloc::{GlobalAlloc, Layout};

use proptest::prelude::*;
use ts_alloc::TsAlloc;

#[derive(Debug, Clone)]
enum AllocOp {
    /// Allocate `size` bytes and fill with a tag.
    Alloc { size: usize },
    /// Free the `idx % live`-th live block.
    Free { idx: usize },
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_alloc_free_never_aliases(
        ops in proptest::collection::vec(
            prop_oneof![
                (1usize..6000).prop_map(|size| AllocOp::Alloc { size }),
                (0usize..64).prop_map(|idx| AllocOp::Free { idx }),
            ],
            1..300,
        )
    ) {
        let a = TsAlloc;
        // live: (ptr, layout, tag)
        let mut live: Vec<(*mut u8, Layout, u8)> = Vec::new();
        let mut next_tag = 1u8;

        for op in ops {
            match op {
                AllocOp::Alloc { size } => {
                    let layout = Layout::from_size_align(size, 8).unwrap();
                    // SAFETY: valid layout; block tracked and freed below.
                    let p = unsafe { a.alloc(layout) };
                    prop_assert!(!p.is_null());
                    // SAFETY: fresh block of `size` bytes.
                    unsafe { p.write_bytes(next_tag, size) };
                    live.push((p, layout, next_tag));
                    next_tag = next_tag.wrapping_add(1).max(1);
                }
                AllocOp::Free { idx } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, layout, tag) = live.swap_remove(idx % live.len());
                    // The block's contents must be exactly what we wrote:
                    // any aliasing with another live block would have
                    // clobbered the tag.
                    // SAFETY: block is live and `layout.size()` long.
                    unsafe {
                        prop_assert_eq!(p.read(), tag);
                        prop_assert_eq!(p.add(layout.size() - 1).read(), tag);
                        a.dealloc(p, layout);
                    }
                }
            }
        }
        // Verify + release the survivors.
        for (p, layout, tag) in live {
            // SAFETY: as above.
            unsafe {
                prop_assert_eq!(p.read(), tag);
                a.dealloc(p, layout);
            }
        }
    }

    /// Freed blocks are recycled: total span footprint stays bounded by
    /// the peak live set, not the total allocation count.
    #[test]
    fn footprint_tracks_peak_not_total(iterations in 100usize..2_000) {
        let a = TsAlloc;
        let layout = Layout::from_size_align(64, 8).unwrap();
        let spans_before = ts_alloc::stats().spans;
        for _ in 0..iterations {
            // SAFETY: immediate roundtrip with the same layout.
            unsafe {
                let p = a.alloc(layout);
                prop_assert!(!p.is_null());
                a.dealloc(p, layout);
            }
        }
        let spans_after = ts_alloc::stats().spans;
        // One live block at a time: at most a couple of spans for this
        // class (plus whatever other tests already carved).
        prop_assert!(
            spans_after - spans_before <= 2,
            "alloc/free cycling must recycle, grew {} spans",
            spans_after - spans_before
        );
    }
}
