//! Whole-program test: `TsAlloc` installed as the real global allocator.
//!
//! Every allocation this test binary makes — test-harness strings, `Vec`
//! growth, `Box`es, thread spawning, TLS machinery — goes through the
//! thread-caching allocator. Survival to the end of the suite *is* the
//! core assertion; the tests add workload-shaped churn on top.

use std::collections::HashMap;

use ts_alloc::TsAlloc;

#[global_allocator]
static ALLOC: TsAlloc = TsAlloc;

#[test]
fn vectors_grow_shrink_and_reallocate() {
    let mut v: Vec<u64> = Vec::new();
    for i in 0..100_000u64 {
        v.push(i);
    }
    assert_eq!(v.iter().sum::<u64>(), 100_000 * 99_999 / 2);
    v.truncate(10);
    v.shrink_to_fit();
    assert_eq!(v.len(), 10);
}

#[test]
fn mixed_size_churn_with_hashmap() {
    let mut map: HashMap<u64, Vec<u8>> = HashMap::new();
    for round in 0..20u64 {
        for k in 0..500u64 {
            map.insert(k, vec![k as u8; (k as usize * 7) % 900 + 1]);
        }
        for k in (0..500u64).step_by(3) {
            map.remove(&k);
        }
        let _ = round;
    }
    for (k, v) in &map {
        assert!(v.iter().all(|&b| b == *k as u8), "block contents corrupted");
    }
}

#[test]
fn multithreaded_producer_consumer_churn() {
    // Cross-thread alloc/free: boxes allocated on producers are dropped on
    // the consumer, exercising cache→depot migration under contention.
    let (tx, rx) = std::sync::mpsc::channel::<Box<[u64; 24]>>();
    let producers: Vec<_> = (0..4)
        .map(|t| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    tx.send(Box::new([t * 1_000_000 + i; 24])).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    let mut received = 0usize;
    while let Ok(b) = rx.recv() {
        assert_eq!(b[0], b[23], "payload corrupted in transit");
        received += 1;
    }
    for p in producers {
        p.join().unwrap();
    }
    assert_eq!(received, 20_000);
}

#[test]
fn large_allocations_pass_through() {
    // > MAX_SMALL: served by the system allocator behind the same facade.
    let before = ts_alloc::stats().large_allocs;
    let big: Vec<Box<[u8]>> = (0..16)
        .map(|i| vec![i as u8; 100_000].into_boxed_slice())
        .collect();
    for (i, b) in big.iter().enumerate() {
        assert_eq!(b[99_999], i as u8);
    }
    drop(big);
    assert!(
        ts_alloc::stats().large_allocs >= before + 16,
        "large requests must be counted as passthrough"
    );
}

#[test]
fn stats_show_thread_cache_amortization() {
    // Churn one size class hard; the depot lock rate must be far below
    // the allocation rate (that is the whole point of the design).
    let s0 = ts_alloc::stats();
    let mut keep: Vec<Box<[u8; 48]>> = Vec::new();
    for i in 0..10_000usize {
        keep.push(Box::new([i as u8; 48]));
        if i % 2 == 0 {
            keep.pop();
        }
    }
    drop(keep);
    let s1 = ts_alloc::stats();
    let allocs = s1.small_allocs - s0.small_allocs;
    let locks = (s1.cache_fills + s1.cache_flushes) - (s0.cache_fills + s0.cache_flushes);
    assert!(allocs >= 10_000);
    assert!(
        locks * 4 < allocs,
        "depot locks ({locks}) must be a small fraction of allocs ({allocs})"
    );
}
