//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest's API the workspace uses, source-compatible with
//! the real crate:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`], and
//!   [`prop_oneof!`];
//! * [`strategy::Strategy`] with `prop_map` and `boxed`, [`strategy::Just`],
//!   integer/float range strategies, tuple strategies,
//!   [`collection::vec`] and [`collection::btree_set`], and
//!   [`arbitrary::any`];
//! * [`test_runner::ProptestConfig`] honouring the `PROPTEST_CASES`
//!   environment variable.
//!
//! **Deliberate deviations from real proptest:**
//!
//! * values are generated, failures reported with the full input set and
//!   the case seed — but there is **no shrinking**;
//! * the default case count is **64**, not 256, to keep offline CI fast,
//!   and `PROPTEST_CASES` *raises* (never lowers) the effective count —
//!   including past an explicit `with_cases` cap, which real proptest
//!   would let the env var silently lose to;
//! * generation is deterministic per test (case index seeds the RNG), so
//!   reruns reproduce failures without a persistence file.
//!
//! When a registry becomes reachable, delete `shims/proptest` and point
//! the workspace dependency at crates.io; no source change is needed.

/// Test-case execution: config, RNG, and error plumbing used by the
/// [`proptest!`] expansion.
pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Unused here (accepted for source compatibility).
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                max_shrink_iters: 0,
            }
        }

        /// The count the runner actually uses: `PROPTEST_CASES` can
        /// *raise* (never lower) the configured count, so suites keep
        /// their fast-CI caps by default but a soak run can override
        /// every block at once. (Deviation from real proptest, where an
        /// explicit `with_cases` ignores the environment.)
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .map_or(self.cases, |env: u32| env.max(self.cases))
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases — offline-CI default; real proptest uses 256.
        fn default() -> Self {
            Self::with_cases(64)
        }
    }

    /// A test-case failure (produced by the `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    /// Result type the generated test body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-case RNG. Delegates to the in-tree `rand` shim
    /// (real proptest depends on `rand` the same way) so the workspace
    /// has exactly one generator implementation.
    #[derive(Clone, Debug)]
    pub struct TestRng(rand::rngs::SmallRng);

    impl TestRng {
        /// RNG for case number `case` (every run replays identically).
        pub fn deterministic(case: u64) -> Self {
            use rand::SeedableRng;
            // Decorrelate consecutive case indices before seeding.
            let seed = case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x9e37_79b9_7f4a_7c15;
            Self(rand::rngs::SmallRng::seed_from_u64(seed))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.0)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            rand::Rng::gen_range(&mut self.0, 0..bound)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            rand::Rng::gen(&mut self.0)
        }
    }
}

/// Value-generation strategies (the generate-only core of proptest).
pub mod strategy {
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Builds a union over `alternatives` (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Self(alternatives)
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Full-domain strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! any_ints {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

/// `any::<T>()` — proptest's arbitrary-value entry point.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Any;

    /// A strategy generating arbitrary values of `T` (for the primitive
    /// types this workspace uses).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(PhantomData)
    }
}

/// Collection strategies: `vec` and `btree_set`.
pub mod collection {
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A count range for collection strategies (`usize` or `a..b`).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range is empty");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from
    /// `size` (duplicates may make the set smaller, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Bounded retries: a narrow element domain may not admit
            // `target` distinct values.
            let mut budget = target * 4 + 16;
            while set.len() < target && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            set
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the real crate's syntax: an optional leading
/// `#![proptest_config(expr)]`, then any number of test functions with
/// `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            for __case in 0..(__cases as u64) {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let __value =
                        $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    __inputs.push(::std::format!(
                        "{} = {:?}", ::std::stringify!($pat), __value
                    ));
                    let $pat = __value;
                )+
                let __outcome: $crate::test_runner::TestCaseResult =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\n  inputs:\n    {}\n  \
                         (no shrinking in the offline shim; rerun reproduces \
                         this case deterministically)",
                        __case + 1,
                        __cases,
                        e.0,
                        __inputs.join("\n    "),
                    );
                }
            }
        }
    )*};
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                            ::std::stringify!($left),
                            ::std::stringify!($right),
                            l,
                            r,
                            ::std::format!($($fmt)+),
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
                            ::std::stringify!($left),
                            ::std::stringify!($right),
                            l,
                            ::std::format!($($fmt)+),
                        )),
                    );
                }
            }
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, y in 0u64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        /// Tuples, vec, oneof, map, and mut-patterns all expand.
        #[test]
        fn combinators_compose(
            pairs in crate::collection::vec((1usize..100, 1usize..8), 0..16),
            mut tagged in crate::collection::vec(
                prop_oneof![
                    (1usize..50).prop_map(Some),
                    Just(None),
                ],
                0..8,
            ),
            flag in any::<bool>(),
        ) {
            for &(a, b) in &pairs {
                prop_assert!((1..100).contains(&a));
                prop_assert!((1..8).contains(&b));
            }
            tagged.retain(Option::is_some);
            prop_assert!(tagged.iter().all(Option::is_some));
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    #[test]
    fn env_var_raises_but_never_lowers_cases() {
        let pinned = crate::test_runner::ProptestConfig::with_cases(48);
        std::env::set_var("PROPTEST_CASES", "10000");
        assert_eq!(pinned.effective_cases(), 10_000, "env must raise a cap");
        std::env::set_var("PROPTEST_CASES", "2");
        assert_eq!(pinned.effective_cases(), 48, "env must not lower a cap");
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(pinned.effective_cases(), 48);
    }

    #[test]
    fn btree_set_respects_target_size() {
        let strat = crate::collection::btree_set(0usize..1000, 5..10);
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        let s = crate::strategy::Strategy::generate(&strat, &mut rng);
        assert!(s.len() < 10);
    }

    proptest! {
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failing_case_panics_with_inputs(x in 0usize..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
