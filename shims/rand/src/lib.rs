//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset this workspace uses: the [`Rng`] extension
//! surface (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and the [`rngs::SmallRng`] / [`rngs::StdRng`] generator types, both
//! backed by xoshiro256** seeded through SplitMix64 (the same seeding
//! scheme the real crates use). Statistical quality is ample for workload
//! generation and tests; this is **not** a cryptographic generator — nor
//! is the real `StdRng` contract relied on anywhere here.
//!
//! When a registry becomes reachable, delete `shims/rand` and point the
//! workspace dependency at crates.io; no source change is needed.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of `T` over its full range (the `Standard`
    /// distribution of real `rand`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, as in
    /// real `rand`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`[0,1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(bounded_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased bounded sampling (Lemire's multiply-shift with rejection).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** core shared by both named generators.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna's recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }

        #[inline]
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A small, fast generator (stands in for `rand`'s `SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    /// The default "standard" generator (stands in for `rand`'s `StdRng`;
    /// NOT cryptographically secure here).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state))
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state))
        }
    }
}

/// Commonly-used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::SeedableRng;

    /// The Lemire rejection threshold must be `(-bound) % bound`; with a
    /// tiny synthetic "word size" the bias of a wrong threshold is
    /// directly countable, so exercise the real sampler over a bound
    /// that forces rejections and check the spread stays tight.
    #[test]
    fn bounded_sampling_is_close_to_uniform() {
        let mut r = SmallRng::seed_from_u64(11);
        const BOUND: u64 = 7;
        const DRAWS: usize = 70_000;
        let mut counts = [0usize; BOUND as usize];
        for _ in 0..DRAWS {
            counts[r.gen_range(0..BOUND) as usize] += 1;
        }
        let expect = DRAWS / BOUND as usize;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c.abs_diff(expect) < expect / 10,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..10_000 {
            let v = a.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = a.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = a.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rates_are_plausible() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn full_range_sampling_covers_extremes_eventually() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut any_high = false;
        for _ in 0..64 {
            if r.gen::<u64>() > u64::MAX / 2 {
                any_high = true;
            }
        }
        assert!(any_high);
    }
}
