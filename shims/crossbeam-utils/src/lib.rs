//! Offline stand-in for `crossbeam-utils`.
//!
//! Provides [`CachePadded`], the only item this workspace uses. Alignment
//! follows crossbeam's choices: 128 bytes on x86_64/aarch64 (adjacent-line
//! prefetcher pairs), 64 elsewhere.
//!
//! When a registry becomes reachable, delete `shims/crossbeam-utils` and
//! point the workspace dependency at crates.io; no source change is needed.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line (pair).
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    repr(align(64))
)]
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_a_cache_line() {
        assert!(core::mem::align_of::<CachePadded<u8>>() >= 64);
        let p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
