//! Offline stand-in for `parking_lot`.
//!
//! Provides the subset this workspace uses — `Mutex`/`MutexGuard` and
//! `RwLock` with `parking_lot` semantics (const constructors, no lock
//! poisoning) — implemented over `std::sync`. Poison from a panicking
//! holder is swallowed, matching `parking_lot`'s behaviour of simply
//! releasing the lock.
//!
//! When a registry becomes reachable, delete `shims/parking_lot` and point
//! the workspace dependency at crates.io; no source change is needed.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A non-poisoning mutual-exclusion lock with a `const` constructor.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex (usable in `static` initializers).
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A non-poisoning reader-writer lock with a `const` constructor.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock (usable in `static` initializers).
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: Mutex<Vec<i32>> = Mutex::new(Vec::new());

    #[test]
    fn const_static_mutex_works() {
        GLOBAL.lock().push(1);
        assert_eq!(GLOBAL.lock().len(), 1);
    }

    #[test]
    fn poison_is_swallowed() {
        let m = std::sync::Arc::new(Mutex::new(5i32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
