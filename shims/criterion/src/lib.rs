//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `ts-bench` suite uses — groups with
//! `sample_size` / `measurement_time` / `warm_up_time` / `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! as a simple wall-clock harness printing median ns/iter.
//!
//! **Deliberate deviations from real criterion:** no statistical analysis,
//! outlier detection, plots, or baselines; measurement windows are capped
//! at 200 ms per benchmark so the whole suite stays fast (set
//! `TS_BENCH_FULL=1` to honour the configured times).
//!
//! When a registry becomes reachable, delete `shims/criterion` and point
//! the workspace dependency at crates.io; no source change is needed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (one per `criterion_group!` run).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

#[derive(Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Settings {
    /// Caps configured windows unless `TS_BENCH_FULL=1`.
    fn effective(&self) -> (Duration, Duration) {
        if std::env::var_os("TS_BENCH_FULL").is_some_and(|v| v == "1") {
            (self.measurement_time, self.warm_up_time)
        } else {
            (
                self.measurement_time.min(Duration::from_millis(200)),
                self.warm_up_time.min(Duration::from_millis(50)),
            )
        }
    }
}

impl Criterion {
    /// Accepted for source compatibility; CLI flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, &self.settings, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (stored; sampling here is adaptive).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.settings.warm_up_time = t;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, &self.settings, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, &self.settings, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (reports are printed as benches run).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    /// A parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    warm: Duration,
    measure: Duration,
}

impl Bencher {
    /// Times `f`, called repeatedly in growing batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: let caches/branch predictors settle and estimate cost.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(100);
        while warm_start.elapsed() < self.warm {
            let t = Instant::now();
            black_box(f());
            per_iter = t.elapsed().max(Duration::from_nanos(1));
        }
        // Batch so each sample spans >= ~50 µs of work.
        let batch = (Duration::from_micros(50).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 20) as u64;
        let start = Instant::now();
        while start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        if self.samples.is_empty() {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }
}

fn run_one(
    label: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let (measure, warm) = settings.effective();
    let mut bencher = Bencher {
        samples: Vec::new(),
        warm,
        measure,
    };
    f(&mut bencher);
    let mut s = bencher.samples;
    if s.is_empty() {
        println!("{label:<56} (no samples — closure never called iter)");
        return;
    }
    s.sort_by(|a, b| a.total_cmp(b));
    let median = s[s.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / median),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 * 1e9 / median),
        None => String::new(),
    };
    println!(
        "{label:<56} median {median:>12.1} ns/iter  ({} samples){rate}",
        s.len()
    );
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("push", |b| {
            let mut v = Vec::new();
            b.iter(|| {
                v.push(1u8);
                if v.len() > 1024 {
                    v.clear();
                }
            })
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }
}
