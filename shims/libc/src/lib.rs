//! Offline stand-in for the `libc` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* subset of `libc` it uses: C scalar types, the
//! signal/pthread/syscall surface of `ts-sigscan` and `ts-smr`, and the
//! glibc struct layouts they read. Definitions mirror `libc` 0.2.x for
//! `x86_64-unknown-linux-gnu` / `aarch64-unknown-linux-gnu` — layouts
//! must match glibc exactly because kernel-written memory (`ucontext_t`,
//! `siginfo_t`) is reinterpreted through them.
//!
//! When a registry becomes reachable, delete `shims/libc` and point the
//! workspace dependency at crates.io `libc`; no source change is needed.

#![allow(non_camel_case_types, non_upper_case_globals)]
#![cfg(target_os = "linux")]

pub use core::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type time_t = i64;
pub type pthread_t = c_ulong;
pub type sighandler_t = size_t;
pub type greg_t = i64;

// ---------------------------------------------------------------------------
// Errno values (asm-generic, shared by x86_64 and aarch64).
// ---------------------------------------------------------------------------

pub const ESRCH: c_int = 3;
pub const EINTR: c_int = 4;

// ---------------------------------------------------------------------------
// Signals.
// ---------------------------------------------------------------------------

pub const SIGUSR1: c_int = 10;
pub const SIGURG: c_int = 23;

pub const SA_SIGINFO: c_int = 0x0000_0004;
pub const SA_RESTART: c_int = 0x1000_0000;

extern "C" {
    fn __libc_current_sigrtmin() -> c_int;
    fn __libc_current_sigrtmax() -> c_int;
}

/// Lowest real-time signal number (glibc reserves the first few).
#[allow(non_snake_case)]
pub fn SIGRTMIN() -> c_int {
    unsafe { __libc_current_sigrtmin() }
}

/// Highest real-time signal number.
#[allow(non_snake_case)]
pub fn SIGRTMAX() -> c_int {
    unsafe { __libc_current_sigrtmax() }
}

// ---------------------------------------------------------------------------
// Syscall numbers.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub const SYS_membarrier: c_long = 324;
#[cfg(target_arch = "aarch64")]
pub const SYS_membarrier: c_long = 283;

// ---------------------------------------------------------------------------
// Structs (glibc layouts).
// ---------------------------------------------------------------------------

/// glibc `__sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [c_ulong; 16],
}

/// glibc userspace `struct sigaction` (NOT the raw kernel layout).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigaction {
    /// Handler union: `sa_handler` / `sa_sigaction` share this slot.
    pub sa_sigaction: sighandler_t,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<extern "C" fn()>,
}

/// glibc `siginfo_t`: 128 bytes; only the leading fixed fields are typed.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    #[doc(hidden)]
    _pad: [c_int; 29],
    _align: [usize; 0],
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct stack_t {
    pub ss_sp: *mut c_void,
    pub ss_flags: c_int,
    pub ss_size: size_t,
}

/// glibc `pthread_attr_t`: opaque 56-byte (x86_64) / 64-byte (aarch64)
/// union, align 8.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct pthread_attr_t {
    #[cfg(target_arch = "x86_64")]
    __size: [u64; 7],
    #[cfg(not(target_arch = "x86_64"))]
    __size: [u64; 8],
}

#[cfg(target_arch = "x86_64")]
mod arch {
    use super::*;

    pub const NGREG: usize = 23;

    /// glibc x86_64 `mcontext_t`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct mcontext_t {
        pub gregs: [greg_t; NGREG],
        /// Really `*mut _libc_fpstate`; opaque here — never dereferenced.
        pub fpregs: *mut c_void,
        __reserved1: [u64; 8],
    }

    /// glibc x86_64 `ucontext_t`. The trailing FP-state storage and shadow
    /// stack words are kept as an opaque blob: the workspace only ever
    /// *reads* `uc_mcontext.gregs` through a kernel-provided pointer, and
    /// every field before the blob sits at its exact glibc offset.
    #[repr(C)]
    pub struct ucontext_t {
        pub uc_flags: c_ulong,
        pub uc_link: *mut ucontext_t,
        pub uc_stack: stack_t,
        pub uc_mcontext: mcontext_t,
        pub uc_sigmask: sigset_t,
        __fpregs_mem: [u64; 64],
        __ssp: [u64; 4],
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    use super::*;

    /// glibc aarch64 `mcontext_t`.
    #[repr(C)]
    #[repr(align(16))]
    pub struct mcontext_t {
        pub fault_address: c_ulong,
        pub regs: [c_ulong; 31],
        pub sp: c_ulong,
        pub pc: c_ulong,
        pub pstate: c_ulong,
        __reserved: [u8; 4096],
    }

    /// glibc aarch64 `ucontext_t`.
    #[repr(C)]
    pub struct ucontext_t {
        pub uc_flags: c_ulong,
        pub uc_link: *mut ucontext_t,
        pub uc_stack: stack_t,
        pub uc_sigmask: sigset_t,
        pub uc_mcontext: mcontext_t,
    }
}

pub use arch::*;

// ---------------------------------------------------------------------------
// Functions (bound directly against glibc, which Rust links anyway).
// ---------------------------------------------------------------------------

extern "C" {
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;

    pub fn pthread_self() -> pthread_t;
    pub fn pthread_kill(thread: pthread_t, sig: c_int) -> c_int;
    pub fn pthread_equal(t1: pthread_t, t2: pthread_t) -> c_int;
    pub fn pthread_getattr_np(thread: pthread_t, attr: *mut pthread_attr_t) -> c_int;
    pub fn pthread_attr_getstack(
        attr: *const pthread_attr_t,
        stackaddr: *mut *mut c_void,
        stacksize: *mut size_t,
    ) -> c_int;
    pub fn pthread_attr_destroy(attr: *mut pthread_attr_t) -> c_int;

    pub fn close(fd: c_int) -> c_int;
    pub fn pipe(fds: *mut c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn nanosleep(req: *const timespec, rem: *mut timespec) -> c_int;

    pub fn syscall(num: c_long, ...) -> c_long;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Layout guards: these offsets/sizes are what the kernel and glibc
    // actually use; a drift here corrupts signal-handler reads.
    #[test]
    fn glibc_layouts_match() {
        assert_eq!(core::mem::size_of::<sigset_t>(), 128);
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(core::mem::size_of::<sigaction>(), 152);
            assert_eq!(core::mem::offset_of!(ucontext_t, uc_mcontext), 40);
            assert_eq!(core::mem::size_of::<mcontext_t>(), 256);
            assert_eq!(core::mem::size_of::<pthread_attr_t>(), 56);
        }
        assert_eq!(core::mem::size_of::<siginfo_t>(), 128);
    }

    #[test]
    fn sigrtmin_is_sane() {
        let lo = SIGRTMIN();
        let hi = SIGRTMAX();
        assert!(lo > 31 && hi >= lo, "SIGRTMIN {lo} / SIGRTMAX {hi}");
    }
}
