//! An ordered index (lock-based skip list) under ThreadScan, comparing
//! the five reclamation schemes of the paper on the same workload — a
//! miniature, single-shot version of Figure 3's right panel.
//!
//! ```text
//! cargo run --release --example skiplist_index [threads] [seconds]
//! ```

use std::time::Duration;

use ts_workload::{run_combo, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seconds: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);

    // The paper's skip-list workload, scaled down 8× so the example runs
    // quickly on a laptop (full size: 128,000 keys over 256,000).
    let params = WorkloadParams::fig3(StructureKind::Skip, threads)
        .scaled_down(8)
        .with_duration(Duration::from_secs_f64(seconds));

    println!(
        "skip list, {} resident keys, {} threads, {}s per scheme, 20% updates",
        params.initial_size, threads, seconds
    );
    println!("{:>12} {:>12} {:>16}", "scheme", "Mops/s", "vs leaky");

    let mut leaky_tput = None;
    for scheme in SchemeKind::ALL {
        let r = run_combo(scheme, &params);
        let mops = r.ops_per_sec / 1e6;
        if scheme == SchemeKind::Leaky {
            leaky_tput = Some(r.ops_per_sec);
        }
        let rel = leaky_tput
            .map(|l| format!("{:>15.0}%", r.ops_per_sec / l * 100.0))
            .unwrap_or_default();
        println!("{:>12} {:>12.3} {rel}", r.scheme, mops);
        if let Some(ts) = r.threadscan {
            println!(
                "{:>12} {:>12} collects={} freed={} survivors={}",
                "", "", ts.collects, ts.freed, ts.survivors
            );
        }
    }
    println!("expected shape: threadscan ≈ epoch ≈ leaky; hazard slower (a fence per level step); slow-epoch collapses");
}
