//! The §4.3 extension: `TS_add_heap_block` / `TS_remove_heap_block`.
//!
//! A thread that keeps *private* references in a pre-allocated heap block
//! (outside Assumption 1's "private references live on stacks and in
//! registers") registers that block, and the signal handler scans it too.
//!
//! ```text
//! cargo run --example heap_blocks
//! ```

use threadscan::{Collector, CollectorConfig, ThreadHandle};
use ts_sigscan::SignalPlatform;

/// Allocates a node whose only reference ends up in the heap block; the
/// frame (and any stack trace of the pointer) dies when this returns.
#[inline(never)]
fn plant_node(handle: &ThreadHandle<SignalPlatform>, scratch: &mut [usize; 32]) {
    let node: *mut [u64; 16] = Box::into_raw(Box::new([42u64; 16]));
    scratch[17] = node as usize; // reference lives ONLY in the heap block
                                 // Node is unlinked from all *shared* memory (there never was any);
                                 // hand it to ThreadScan.
    unsafe { handle.retire(node) };
}

/// Overwrites the stack region dead frames may have left pointers in.
#[inline(never)]
fn churn(depth: usize) -> usize {
    let noise = std::hint::black_box([depth; 64]);
    if depth == 0 {
        noise[0]
    } else {
        churn(depth - 1) + noise[63]
    }
}

fn main() {
    let collector = Collector::with_config(
        SignalPlatform::new().expect("POSIX signals required"),
        CollectorConfig::default().with_buffer_capacity(4),
    );
    let handle = collector.register();

    // A heap-side scratch table of private references (e.g. a hand-rolled
    // per-thread cache). The stack never durably holds these pointers.
    let mut scratch: Box<[usize; 32]> = Box::new([0; 32]);

    // Register the block so scans cover it.
    handle
        .add_heap_block(scratch.as_ptr().cast(), std::mem::size_of_val(&*scratch))
        .expect("register heap block");

    plant_node(&handle, &mut scratch);
    std::hint::black_box(churn(64));
    handle.flush();
    handle.flush();
    let st = collector.stats();
    assert_eq!(
        st.freed, 0,
        "the heap-block reference must pin the node (freed={})",
        st.freed
    );
    println!("phase 1: node survived — heap block scanned, reference found");

    // Drop the private reference and unregister the block.
    scratch[17] = 0;
    handle
        .remove_heap_block(scratch.as_ptr().cast())
        .expect("unregister heap block");

    let mut freed = 0;
    for _ in 0..64 {
        std::hint::black_box(churn(64));
        handle.flush();
        freed = collector.stats().freed;
        if freed == 1 {
            break;
        }
    }
    assert_eq!(freed, 1, "node reclaimed after the reference was dropped");
    println!("phase 2: node reclaimed after reference removal");
    println!("OK: semi-automatic heap-block extension works");
}
