//! A hash-table working set under ThreadScan — the paper's "cheap
//! operations" case, where reclamation cost amortizes best (§6: "Even with
//! 10% removals, the cost of signaling and reclaiming nodes is distributed
//! over the cheap operations performed on the hash table").
//!
//! Models a cache: lookups dominate, a mutator thread continuously evicts
//! and refills entries, and the collector's counters show the per-phase
//! amortization.
//!
//! ```text
//! cargo run --release --example hash_cache [threads] [seconds]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use threadscan::CollectorConfig;
use ts_sigscan::SignalPlatform;
use ts_smr::{Smr, ThreadScanSmr};
use ts_structures::{ConcurrentSet, LockFreeHashTable};
use ts_workload::OpMix;

const RANGE: u64 = 1 << 16;

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seconds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let scheme = Arc::new(ThreadScanSmr::with_config(
        SignalPlatform::new().expect("POSIX signals required"),
        CollectorConfig::default().with_buffer_capacity(1024),
    ));
    let cache = Arc::new(LockFreeHashTable::<ThreadScanSmr<SignalPlatform>>::new(
        (RANGE / 64) as usize,
    ));

    {
        let h = scheme.register();
        for k in 0..RANGE / 2 {
            cache.insert(&h, k * 2);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..threads {
            let scheme = Arc::clone(&scheme);
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                let h = scheme.register();
                // 20% updates: the paper's mix.
                let mut mix = OpMix::new(t as u64, RANGE, 20);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match mix.next_op() {
                        ts_workload::Op::Contains(k) => drop(cache.contains(&h, k)),
                        ts_workload::Op::Insert(k) => drop(cache.insert(&h, k)),
                        ts_workload::Op::Remove(k) => drop(cache.remove(&h, k)),
                    }
                    n += 1;
                }
                ops.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
    });

    scheme.quiesce();
    let st = scheme.stats();
    let total = ops.load(Ordering::Relaxed);
    println!(
        "throughput:     {:.2} Mops/s",
        total as f64 / seconds as f64 / 1e6
    );
    println!("retired/freed:  {} / {}", st.retired, st.freed);
    println!("collect phases: {}", st.collects);
    if st.collects > 0 {
        println!(
            "amortization:   {:.0} ops per phase, {:.0} frees per phase, {:.0} scanned words per phase",
            total as f64 / st.collects as f64,
            st.freed as f64 / st.collects as f64,
            st.words_scanned as f64 / st.collects as f64,
        );
    }
    println!("OK");
}
