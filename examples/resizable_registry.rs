//! A live-resizing session registry on the split-ordered hash table,
//! reclaimed by ThreadScan.
//!
//! A connection registry starts tiny and grows by orders of magnitude as
//! sessions arrive. The split-ordered table resizes **lock-free and in
//! place** — doubling the bucket count never moves an item, it only
//! threads new dummy nodes into the underlying list — while readers keep
//! traversing and ThreadScan keeps reclaiming the sessions that log off
//! mid-resize.
//!
//! ```text
//! cargo run --release --example resizable_registry
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use threadscan::CollectorConfig;
use ts_sigscan::SignalPlatform;
use ts_smr::{Smr, ThreadScanSmr};
use ts_structures::{ConcurrentSet, SplitOrderedSet};

type Ts = ThreadScanSmr<SignalPlatform>;

const WORKERS: u64 = 3;
const SESSIONS_PER_WORKER: u64 = 30_000;

fn main() {
    let scheme = Arc::new(ThreadScanSmr::with_config(
        SignalPlatform::new().expect("POSIX signals required"),
        CollectorConfig::default().with_buffer_capacity(1024),
    ));
    // Deliberately undersized: two buckets. Every growth step happens live.
    let registry = Arc::new(SplitOrderedSet::<Ts>::with_buckets(2));
    let churned = Arc::new(AtomicU64::new(0));

    println!("initial buckets: {}", registry.bucket_count());
    let t0 = Instant::now();

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let scheme = Arc::clone(&scheme);
            let registry = Arc::clone(&registry);
            let churned = Arc::clone(&churned);
            s.spawn(move || {
                let h = scheme.register();
                for i in 0..SESSIONS_PER_WORKER {
                    let session_id = w * SESSIONS_PER_WORKER + i;
                    assert!(registry.insert(&h, session_id), "session ids unique");
                    // A fifth of the sessions are short-lived: they log
                    // off immediately, retiring their node while other
                    // workers may be traversing the same bucket chain.
                    if i % 5 == 0 {
                        assert!(registry.remove(&h, session_id));
                        churned.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // A reader thread validating lookups during growth.
        let scheme2 = Arc::clone(&scheme);
        let registry2 = Arc::clone(&registry);
        s.spawn(move || {
            let h = scheme2.register();
            for pass in 0..10u64 {
                for id in (0..WORKERS * SESSIONS_PER_WORKER).step_by(97) {
                    std::hint::black_box(registry2.contains(&h, id));
                }
                std::hint::black_box(pass);
            }
        });
    });

    // Verify final contents exactly.
    let h = scheme.register();
    for w in 0..WORKERS {
        for i in (1..SESSIONS_PER_WORKER).step_by(977) {
            let id = w * SESSIONS_PER_WORKER + i;
            assert_eq!(registry.contains(&h, id), i % 5 != 0, "session {id}");
        }
    }
    drop(h);

    scheme.quiesce();
    let stats = scheme.stats();
    let expected_live = WORKERS * SESSIONS_PER_WORKER - churned.load(Ordering::Relaxed);
    println!(
        "sessions live:   {} (expected {expected_live})",
        registry.len_estimate()
    );
    println!("final buckets:   {} (grew from 2)", registry.bucket_count());
    println!("collect phases:  {}", stats.collects);
    println!("nodes freed:     {}", stats.freed);
    println!("outstanding:     {}", scheme.outstanding());
    println!("elapsed:         {:?}", t0.elapsed());
    assert_eq!(registry.len_estimate() as u64, expected_live);
    assert!(registry.bucket_count() > 2);
    println!("OK: table grew live while ThreadScan reclaimed departing sessions");
}
