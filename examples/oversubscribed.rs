//! Oversubscription demo (Figure 4's regime): run more threads than
//! hardware contexts and watch ThreadScan still reclaim — signals reach
//! descheduled threads when the OS next runs them, so reclamation latency
//! grows but safety and progress hold.
//!
//! ```text
//! cargo run --release --example oversubscribed [factor] [seconds]
//! ```

use std::time::Duration;

use ts_workload::{run_combo, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let factor: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2.5);
    let seconds: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = ((hw as f64) * factor).round().max(2.0) as usize;
    println!("{hw} hardware threads, running {threads} workers ({factor}x oversubscribed)");

    let params = WorkloadParams::fig3(StructureKind::Hash, threads)
        .scaled_down(8)
        .with_duration(Duration::from_secs_f64(seconds));

    for (label, p) in [
        ("threadscan (1024-entry buffers)", params.clone()),
        (
            "threadscan (4096-entry buffers, Figure 4 tuning)",
            params.clone().with_ts_buffer(4096),
        ),
    ] {
        let r = run_combo(SchemeKind::ThreadScan, &p);
        let ts = r.threadscan.unwrap_or_default();
        println!(
            "{label}: {:.3} Mops/s, {} phases, {} freed, outstanding {}",
            r.ops_per_sec / 1e6,
            ts.collects,
            ts.freed,
            r.outstanding_after.unwrap_or(0),
        );
    }
    let leaky = run_combo(SchemeKind::Leaky, &params);
    println!(
        "leaky ceiling: {:.3} Mops/s (leaked {} nodes)",
        leaky.ops_per_sec / 1e6,
        leaky.leaked.unwrap_or(0)
    );
    println!("OK: oversubscribed reclamation completed");
}
