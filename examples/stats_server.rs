//! Live observability: serve `GET /metrics` while a workload runs.
//!
//! Starts a ThreadScan workload (the fig3 list cell, telemetry enabled)
//! in a background thread and serves the process's Prometheus metrics
//! page over a hand-rolled `std::net` HTTP listener — no web framework,
//! no dependencies, ~as much HTTP as a scrape endpoint needs. Point a
//! Prometheus scraper (or `curl`) at it and watch collects, pool
//! residency, and worker ops move while the run churns.
//!
//! ```text
//! cargo run --release --example stats_server -- [--port 9184] \
//!     [--duration-secs 10] [--self-check]
//! ```
//!
//! `--port 0` (the default) binds an ephemeral port and prints it.
//! `--self-check` is the CI shape: serve, scrape *itself* once over
//! loopback, validate that the page contains `threadscan_collects_total`,
//! print the page, and exit 0/1 — no backgrounding or external curl
//! needed.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ts_workload::{run_combo, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let mut port: u16 = 0;
    let mut duration = Duration::from_secs(10);
    let mut self_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                port = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--port expects a number");
            }
            "--duration-secs" => {
                duration = Duration::from_secs_f64(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--duration-secs expects a number"),
                );
            }
            "--self-check" => self_check = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    let listener = TcpListener::bind(("127.0.0.1", port)).expect("bind metrics port");
    let addr = listener.local_addr().expect("local addr");
    println!("# serving http://{addr}/metrics");

    // The workload: fig3 list cells under ThreadScan with the telemetry
    // sink installed, looped until the serving window closes. Each
    // run_combo is a complete measured run; looping keeps the counters
    // moving for the whole window.
    let stop = Arc::new(AtomicBool::new(false));
    let workload = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let params = WorkloadParams::fig3(StructureKind::List, 2)
                .scaled_down(16)
                .with_duration(Duration::from_millis(200))
                .with_node_pool(true)
                .with_telemetry(true);
            let mut runs = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _ = run_combo(SchemeKind::ThreadScan, &params);
                runs += 1;
            }
            runs
        })
    };

    // Serve until the deadline (poll-accept so the deadline is honored
    // even with no clients).
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => serve_one(stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => panic!("accept failed: {e}"),
                }
            }
        })
    };

    let ok = if self_check {
        // Give the workload time to complete at least one full run so the
        // counters it publishes are nonzero, then scrape ourselves.
        std::thread::sleep(Duration::from_millis(800));
        let page = scrape(addr);
        println!("{page}");
        let ok = page.starts_with("HTTP/1.1 200")
            && page.contains("threadscan_collects_total")
            && page.contains("threadscan_pool_bytes_resident")
            && page.contains("threadscan_worker_ops_total");
        println!(
            "# self-check: {}",
            if ok {
                "ok"
            } else {
                "FAILED (expected collect, pool, and worker metrics)"
            }
        );
        ok
    } else {
        let deadline = Instant::now() + duration;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
        }
        true
    };

    stop.store(true, Ordering::Relaxed);
    server.join().expect("server thread");
    let runs = workload.join().expect("workload thread");
    println!("# workload completed {runs} runs");
    std::process::exit(if ok { 0 } else { 1 });
}

/// Answers one HTTP request: the metrics page for `GET /metrics` (and
/// `GET /`, for convenience), 404 otherwise.
fn serve_one(mut stream: TcpStream) {
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(n) => n,
        Err(_) => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if request.starts_with("GET") && (path == "/metrics" || path == "/") {
        ("200 OK", ts_telemetry::render_prometheus())
    } else {
        ("404 Not Found", "not found; try /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Fetches `/metrics` from our own listener; returns the raw response.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to self");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut page = String::new();
    stream.read_to_string(&mut page).expect("read response");
    page
}
