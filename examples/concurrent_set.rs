//! The paper's Figure 1 scenario at scale: a lock-free linked list with
//! concurrent removers and invisible readers, reclaimed by ThreadScan.
//!
//! Thread T1 removes node B while thread T2 is traversing it — the exact
//! race that makes manual `free` unsound in C. ThreadScan's signal scan
//! sees T2's stack reference and defers the free.
//!
//! ```text
//! cargo run --release --example concurrent_set [readers] [writers] [seconds]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ts_sigscan::SignalPlatform;
use ts_smr::{Smr, ThreadScanSmr};
use ts_structures::{ConcurrentSet, HarrisList};

fn main() {
    let mut args = std::env::args().skip(1);
    let readers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let writers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let seconds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let scheme = Arc::new(ThreadScanSmr::new(
        SignalPlatform::new().expect("POSIX signals required"),
    ));
    let list = Arc::new(HarrisList::<ThreadScanSmr<SignalPlatform>>::new());

    // Prefill: 1024 keys over a 2048 range (the paper's list workload).
    {
        let h = scheme.register();
        for k in 0..1024u64 {
            list.insert(&h, k * 2);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let updates = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for r in 0..readers {
            let scheme = Arc::clone(&scheme);
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let h = scheme.register();
                let mut k = r as u64;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Invisible traversal: no fences, no writes.
                    let _ = list.contains(&h, k % 2048);
                    k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
                    n += 1;
                }
                reads.fetch_add(n, Ordering::Relaxed);
            });
        }
        for w in 0..writers {
            let scheme = Arc::clone(&scheme);
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            let updates = Arc::clone(&updates);
            s.spawn(move || {
                let h = scheme.register();
                let mut k = 0xdead_beef_u64.wrapping_add(w as u64);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = k % 2048;
                    // Remove-then-reinsert churn: every successful remove
                    // unlinks a node and hands it to ThreadScan while
                    // readers may still be on it.
                    if list.remove(&h, key) {
                        list.insert(&h, key);
                    }
                    k = k.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    n += 1;
                }
                updates.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
    });

    scheme.quiesce();
    let st = scheme.stats();
    println!("reads:            {}", reads.load(Ordering::Relaxed));
    println!("update attempts:  {}", updates.load(Ordering::Relaxed));
    println!("nodes retired:    {}", st.retired);
    println!("nodes freed:      {}", st.freed);
    println!("collect phases:   {}", st.collects);
    println!("marked survivors: {}", st.survivors);
    println!(
        "words scanned:    {} ({:.0} per phase)",
        st.words_scanned,
        st.words_scanned as f64 / st.collects.max(1) as f64
    );
    println!(
        "outstanding:      {} (stale stack slots may pin a handful until \
         the next phase)",
        st.retired - st.freed
    );
    assert!(
        st.retired - st.freed <= 2048,
        "reclamation should keep up with churn"
    );
    println!("OK: no use-after-free, memory reclaimed while readers ran");
}
