//! A deadline-driven task scheduler on the Shavit–Lotan priority queue,
//! reclaimed by ThreadScan.
//!
//! Producers submit jobs tagged with a deadline tick; worker threads pull
//! the earliest-deadline job with `delete_min`. Every completed job is a
//! node retirement, so a busy scheduler is constant reclamation pressure —
//! and none of this code knows it: no hazard slots, no epoch brackets,
//! just `register()` once per thread.
//!
//! ```text
//! cargo run --release --example task_scheduler            # closed loop
//! cargo run --release --example task_scheduler -- --open  # Poisson 100k QPS
//! cargo run --release --example task_scheduler -- --open 250000
//! ```
//!
//! With `--open`, producers submit on a Poisson schedule
//! ([`ts_workload::LoadModel::OpenPoisson`]) instead of as fast as the
//! queue accepts, and every job's latency is measured from its *intended
//! submission time* to execution — the coordinated-omission-correct
//! number a job submitter would experience, including any time the job
//! waited behind a reclamation phase. The demo prints p50/p99/p999 from
//! the shared log2 histogram ([`threadscan::Hist`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use threadscan::{CollectorConfig, Hist};
use ts_sigscan::SignalPlatform;
use ts_smr::{Smr, ThreadScanSmr};
use ts_structures::PriorityQueue;
use ts_workload::load::{ArrivalSchedule, LoadModel};

type Ts = ThreadScanSmr<SignalPlatform>;

const PRODUCERS: u64 = 2;
const WORKERS: usize = 2;
const JOBS_PER_PRODUCER: u64 = 20_000;
const JOB_ID_BITS: u64 = 20;

fn main() {
    // `--open [qps]`: Poisson submissions at an aggregate target rate.
    let argv: Vec<String> = std::env::args().collect();
    let open_qps: Option<f64> = argv.iter().position(|a| a == "--open").map(|i| {
        argv.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000.0)
    });

    let scheme = Arc::new(ThreadScanSmr::with_config(
        SignalPlatform::new().expect("POSIX signals required"),
        // A modest buffer so the demo visibly runs collect phases.
        CollectorConfig::default().with_buffer_capacity(512),
    ));
    // The queue key encodes (deadline_tick << 20) | job_id: earliest
    // deadline first, ties broken by submission order, keys unique.
    let queue = Arc::new(PriorityQueue::<Ts>::new());
    let executed = Arc::new(AtomicU64::new(0));
    let total_jobs = PRODUCERS * JOBS_PER_PRODUCER;

    // Open-loop bookkeeping: the intended submission time of every job
    // (ns from the shared epoch, written before the job is queued), and
    // the merged latency histogram. One epoch for all threads — jobs
    // cross threads, so submitter and executor must share a clock.
    let submit_ns: Arc<Vec<AtomicU64>> =
        Arc::new((0..total_jobs).map(|_| AtomicU64::new(0)).collect());
    let hist = Arc::new(Mutex::new(Hist::new()));
    let max_lat_ns = Arc::new(AtomicU64::new(0));
    let epoch = Instant::now();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        let producer_handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let scheme = Arc::clone(&scheme);
                let queue = Arc::clone(&queue);
                let submit_ns = Arc::clone(&submit_ns);
                s.spawn(move || {
                    let h = scheme.register();
                    let mut schedule = open_qps.and_then(|qps| {
                        ArrivalSchedule::for_worker(
                            &LoadModel::OpenPoisson { qps },
                            0xD15C0,
                            p as usize,
                            PRODUCERS as usize,
                        )
                    });
                    let mut seed = 0x9E37_79B9 ^ p;
                    for job in 0..JOBS_PER_PRODUCER {
                        // Pseudo-random deadline 0..4096 ticks out.
                        seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let deadline = seed >> 52;
                        let job_id = p * JOBS_PER_PRODUCER + job;
                        let key = (deadline << JOB_ID_BITS) | job_id;
                        if let Some(sch) = schedule.as_mut() {
                            // Wait for the job's intended submission time,
                            // and publish it (Release) before the insert
                            // makes the job visible to executors.
                            let intended = sch.next_ns();
                            while (epoch.elapsed().as_nanos() as u64) < intended {
                                std::thread::yield_now();
                            }
                            submit_ns[job_id as usize].store(intended, Ordering::Release);
                        }
                        assert!(queue.insert(&h, key), "job ids are unique");
                    }
                })
            })
            .collect();

        for _ in 0..WORKERS {
            let scheme = Arc::clone(&scheme);
            let queue = Arc::clone(&queue);
            let executed = Arc::clone(&executed);
            let submit_ns = Arc::clone(&submit_ns);
            let hist = Arc::clone(&hist);
            let max_lat_ns = Arc::clone(&max_lat_ns);
            s.spawn(move || {
                let h = scheme.register();
                let mut local = Hist::new();
                let mut local_max = 0u64;
                loop {
                    match queue.delete_min(&h) {
                        Some(key) => {
                            // "Execute" the job.
                            if open_qps.is_some() {
                                let job_id = (key & ((1 << JOB_ID_BITS) - 1)) as usize;
                                let intended = submit_ns[job_id].load(Ordering::Acquire);
                                let lat =
                                    (epoch.elapsed().as_nanos() as u64).saturating_sub(intended);
                                local.record(lat);
                                local_max = local_max.max(lat);
                            }
                            if executed.fetch_add(1, Ordering::AcqRel) + 1 == total_jobs {
                                break;
                            }
                        }
                        None if executed.load(Ordering::Acquire) >= total_jobs => break,
                        None => std::thread::yield_now(),
                    }
                }
                hist.lock().unwrap().merge(&local);
                max_lat_ns.fetch_max(local_max, Ordering::AcqRel);
            });
        }

        // Producers finishing is what lets a worker's final `None` mean
        // "drained" rather than "momentarily empty".
        for h in producer_handles {
            h.join().expect("producer");
        }
    });

    let ran = executed.load(Ordering::Relaxed);
    assert_eq!(ran, total_jobs, "every job ran once");

    scheme.quiesce();
    let stats = scheme.stats();
    println!("jobs executed:   {ran} in {:?}", t0.elapsed());
    println!("collect phases:  {}", stats.collects);
    println!("nodes freed:     {}", stats.freed);
    println!("words scanned:   {}", stats.words_scanned);
    println!("outstanding:     {}", scheme.outstanding());
    if let Some(qps) = open_qps {
        let hist = hist.lock().unwrap();
        assert_eq!(hist.count(), total_jobs, "every job's latency recorded");
        println!("offered load:    poisson {qps} jobs/s");
        println!(
            "job latency:     p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {:.1} us",
            hist.percentile_ns(0.50) / 1e3,
            hist.percentile_ns(0.99) / 1e3,
            hist.percentile_ns(0.999) / 1e3,
            max_lat_ns.load(Ordering::Relaxed) as f64 / 1e3,
        );
        println!("OK: submit-to-execute latency measured from intended arrivals");
    } else {
        println!("OK: every executed job's node was retired through ThreadScan");
    }
}
