//! A deadline-driven task scheduler on the Shavit–Lotan priority queue,
//! reclaimed by ThreadScan.
//!
//! Producers submit jobs tagged with a deadline tick; worker threads pull
//! the earliest-deadline job with `delete_min`. Every completed job is a
//! node retirement, so a busy scheduler is constant reclamation pressure —
//! and none of this code knows it: no hazard slots, no epoch brackets,
//! just `register()` once per thread.
//!
//! ```text
//! cargo run --release --example task_scheduler
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use threadscan::CollectorConfig;
use ts_sigscan::SignalPlatform;
use ts_smr::{Smr, ThreadScanSmr};
use ts_structures::PriorityQueue;

type Ts = ThreadScanSmr<SignalPlatform>;

const PRODUCERS: u64 = 2;
const WORKERS: usize = 2;
const JOBS_PER_PRODUCER: u64 = 20_000;

fn main() {
    let scheme = Arc::new(ThreadScanSmr::with_config(
        SignalPlatform::new().expect("POSIX signals required"),
        // A modest buffer so the demo visibly runs collect phases.
        CollectorConfig::default().with_buffer_capacity(512),
    ));
    // The queue key encodes (deadline_tick << 20) | job_id: earliest
    // deadline first, ties broken by submission order, keys unique.
    let queue = Arc::new(PriorityQueue::<Ts>::new());
    let executed = Arc::new(AtomicU64::new(0));
    let done_producing = Arc::new(AtomicBool::new(false));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let scheme = Arc::clone(&scheme);
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                let h = scheme.register();
                let mut seed = 0x9E37_79B9 ^ p;
                for job in 0..JOBS_PER_PRODUCER {
                    // Pseudo-random deadline 0..4096 ticks out.
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let deadline = seed >> 52;
                    let job_id = p * JOBS_PER_PRODUCER + job;
                    let key = (deadline << 20) | job_id;
                    assert!(queue.insert(&h, key), "job ids are unique");
                }
            });
        }

        for _ in 0..WORKERS {
            let scheme = Arc::clone(&scheme);
            let queue = Arc::clone(&queue);
            let executed = Arc::clone(&executed);
            let done_producing = Arc::clone(&done_producing);
            s.spawn(move || {
                let h = scheme.register();
                loop {
                    match queue.delete_min(&h) {
                        Some(_key) => {
                            // "Execute" the job.
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                        None if done_producing.load(Ordering::Acquire) => break,
                        None => std::thread::yield_now(),
                    }
                }
            });
        }

        // Herald the end of production so workers drain and exit.
        s.spawn({
            let done_producing = Arc::clone(&done_producing);
            move || {
                // Producers are the first PRODUCERS spawns; simplest herald
                // is to watch the executed count approach the total.
                // (Scoped threads join at the end regardless.)
                std::thread::sleep(Duration::from_millis(50));
                done_producing.store(true, Ordering::Release);
            }
        });
    });

    // Late drain: anything still queued after the first wave.
    {
        let h = scheme.register();
        while queue.delete_min(&h).is_some() {
            executed.fetch_add(1, Ordering::Relaxed);
        }
    }

    let ran = executed.load(Ordering::Relaxed);
    assert_eq!(ran, PRODUCERS * JOBS_PER_PRODUCER, "every job ran once");

    scheme.quiesce();
    let stats = scheme.stats();
    println!("jobs executed:   {ran} in {:?}", t0.elapsed());
    println!("collect phases:  {}", stats.collects);
    println!("nodes freed:     {}", stats.freed);
    println!("words scanned:   {}", stats.words_scanned);
    println!("outstanding:     {}", scheme.outstanding());
    println!("OK: every executed job's node was retired through ThreadScan");
}
