//! Quickstart: ThreadScan in a dozen lines.
//!
//! The whole integration surface is: create a collector, register each
//! thread, hand unlinked nodes to `retire`. No per-read annotations, no
//! epochs, no hazard slots — scanning happens in signal handlers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use threadscan::Collector;
use ts_sigscan::SignalPlatform;

fn main() {
    // One collector per shared data region (or per process).
    let collector = Collector::new(SignalPlatform::new().expect("POSIX signals required"));

    // Every thread that touches shared nodes registers once.
    let handle = collector.register();

    // Allocate nodes as you normally would.
    let node: *mut [u64; 8] = Box::into_raw(Box::new([7u64; 8]));

    // ... publish `node` in a shared structure, use it, then *unlink* it
    // so no shared pointer leads to it anymore (the programmer's half of
    // the memory-reclamation contract, paper §1.1) ...

    // Hand it to ThreadScan instead of freeing. Safe even if other
    // registered threads still hold stack references.
    unsafe { handle.retire(node) };

    // Reclamation normally triggers itself when a per-thread delete buffer
    // (default 1024 nodes) fills; force a phase to see it happen now.
    handle.flush();

    let stats = collector.stats();
    println!("retired:        {}", stats.retired);
    println!("freed:          {}", stats.freed);
    println!("collect phases: {}", stats.collects);
    println!("words scanned:  {}", stats.words_scanned);
    assert_eq!(stats.retired, 1);
    println!("OK: node retired and reclaimed through a real signal scan");
}
