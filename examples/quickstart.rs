//! Quickstart: ThreadScan in a dozen lines.
//!
//! The whole integration surface is: create a collector, register each
//! thread, hand unlinked nodes to `retire`. No per-read annotations, no
//! epochs, no hazard slots — scanning happens in signal handlers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use threadscan::{Collector, ThreadHandle};
use ts_sigscan::SignalPlatform;

/// Allocates one node, "uses" it, unlinks it, and hands it to ThreadScan.
/// In its own function so that every private copy of the pointer (the
/// local, the `Box` temporaries) dies with this frame: the conservative
/// scan keeps a node alive as long as *any* registered thread's memory
/// still holds its address — including this thread's own.
#[inline(never)]
fn alloc_use_and_retire(handle: &ThreadHandle<SignalPlatform>) {
    // Allocate nodes as you normally would.
    let node: *mut [u64; 8] = Box::into_raw(Box::new([7u64; 8]));

    // ... publish `node` in a shared structure, use it, then *unlink* it
    // so no shared pointer leads to it anymore (the programmer's half of
    // the memory-reclamation contract, paper §1.1) ...

    // Hand it to ThreadScan instead of freeing. Safe even if other
    // registered threads still hold stack references.
    unsafe { handle.retire(node) };
}

/// Overwrites the dead stack region the call above just vacated. A real
/// application doesn't do this — its ordinary call activity does it for
/// free, and a node pinned by a stale stack slot simply survives into a
/// later phase (see `ThreadScanSmr::quiesce`). The example scrubs
/// explicitly so the very next phase demonstrably frees the node in both
/// debug and release builds.
#[inline(never)]
fn scrub_dead_stack() {
    let mut frame = [0usize; 1024];
    std::hint::black_box(&mut frame);
}

fn main() {
    // One collector per shared data region (or per process).
    let collector = Collector::new(SignalPlatform::new().expect("POSIX signals required"));

    // Every thread that touches shared nodes registers once.
    let handle = collector.register();

    alloc_use_and_retire(&handle);
    scrub_dead_stack();

    // Reclamation normally triggers itself when a per-thread delete buffer
    // (default 1024 nodes) fills; force a phase to see it happen now.
    handle.flush();

    let stats = collector.stats();
    println!("retired:        {}", stats.retired);
    println!("freed:          {}", stats.freed);
    println!("collect phases: {}", stats.collects);
    println!("words scanned:  {}", stats.words_scanned);
    assert_eq!(stats.retired, 1);
    assert_eq!(stats.freed, 1);
    println!("OK: node retired and reclaimed through a real signal scan");
}
