//! The paper's Figure 1, literally: thread T1 disconnects node B and calls
//! free(B) while thread T2 holds a private reference to B and reads
//! through it. ThreadScan must (a) not free B while T2 can still read it,
//! and (b) free B afterwards.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use threadscan::{Collector, CollectorConfig, ThreadHandle};
use ts_sigscan::SignalPlatform;

static B_DROPPED: AtomicUsize = AtomicUsize::new(0);

/// Node "B" from the figure; drop is instrumented.
struct NodeB {
    value: u64,
    _pad: [u64; 8],
}
impl Drop for NodeB {
    fn drop(&mut self) {
        B_DROPPED.fetch_add(1, Ordering::SeqCst);
    }
}

#[inline(never)]
fn churn(depth: usize) -> usize {
    let noise = std::hint::black_box([depth; 64]);
    if depth == 0 {
        noise[0]
    } else {
        churn(depth - 1) + noise[63]
    }
}

/// T2's body: grab the reference (step 1 in the figure), announce, wait,
/// then read through it (step 4: `val = B.value`) and return the value.
#[inline(never)]
fn t2_access(shared_b: &std::sync::atomic::AtomicPtr<NodeB>, barrier: &Barrier) -> u64 {
    // 1. B = A.next — T2 takes its private reference.
    let b = std::hint::black_box(shared_b.load(Ordering::Acquire));
    barrier.wait(); // T2 holds the reference
    barrier.wait(); // T1 has disconnected and called free(B)
                    // 4-5. val = B.value; return val + 2 — the dangerous read.
    let val = unsafe { (*std::hint::black_box(b)).value };
    val + 2
}

#[test]
fn figure1_disconnect_free_race_is_safe() {
    let collector = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(8),
    );
    // "A.next" — the shared reference leading to B.
    let shared_b = Arc::new(std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()));
    let barrier = Arc::new(Barrier::new(2));
    let t2_result = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));

    // Publish B from a dying frame so the raw pointer never lives in this
    // (always-scanned) test frame.
    #[inline(never)]
    fn publish_b(shared: &std::sync::atomic::AtomicPtr<NodeB>) {
        let b = Box::into_raw(Box::new(NodeB {
            value: 40,
            _pad: [0; 8],
        }));
        shared.store(b, Ordering::Release);
    }
    publish_b(&shared_b);
    std::hint::black_box(churn(64));

    std::thread::scope(|s| {
        // T2: concurrent reader.
        {
            let collector = Arc::clone(&collector);
            let shared_b = Arc::clone(&shared_b);
            let barrier = Arc::clone(&barrier);
            let t2_result = Arc::clone(&t2_result);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let _handle = collector.register();
                let val = t2_access(&shared_b, &barrier);
                t2_result.store(val as usize, Ordering::SeqCst);
                std::hint::black_box(churn(64));
                done.store(true, Ordering::SeqCst);
                barrier.wait(); // let T1 finish
            });
        }

        // T1: the deleter.
        let handle: ThreadHandle<SignalPlatform> = collector.register();
        barrier.wait(); // T2 holds its reference

        // 2. A.next = C — disconnect B (here: clear the shared pointer).
        #[inline(never)]
        fn disconnect_and_free(
            shared_b: &std::sync::atomic::AtomicPtr<NodeB>,
            handle: &ThreadHandle<SignalPlatform>,
        ) {
            let b = shared_b.swap(std::ptr::null_mut(), Ordering::AcqRel);
            // 3. Free(B) — ThreadScan's free, not libc's.
            unsafe { handle.retire(b) };
        }
        disconnect_and_free(&shared_b, &handle);
        std::hint::black_box(churn(64));

        // Force reclamation *while T2 still holds the reference*.
        handle.flush();
        handle.flush();
        assert_eq!(
            B_DROPPED.load(Ordering::SeqCst),
            0,
            "B freed while T2 still held a private reference!"
        );

        barrier.wait(); // let T2 perform its read
        while !done.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // T2 has read and dropped its reference; B must now be
        // reclaimable within a bounded number of phases.
        let mut freed = false;
        for _ in 0..128 {
            std::hint::black_box(churn(64));
            handle.flush();
            if B_DROPPED.load(Ordering::SeqCst) == 1 {
                freed = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        barrier.wait();
        assert!(freed, "B must eventually be reclaimed");
        assert_eq!(t2_result.load(Ordering::SeqCst), 42, "T2 read valid data");
        drop(handle);
    });
}
