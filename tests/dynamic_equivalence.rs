//! Satellite of the guard/dynamic API redesign: every scheme driven
//! through the type-erased layer (`Arc<dyn DynSmr>` → `ErasedSmr`) must
//! be **observationally equivalent** to the monomorphized path — same
//! per-operation results, same final set contents, and the same
//! reclamation accounting after a quiesce. The erased layer may only add
//! virtual-call latency, never change behaviour.

use std::sync::Arc;

use ts_sigscan::SignalPlatform;
use ts_smr::dynamic::{DynSmr, ErasedSmr};
use ts_smr::{EpochScheme, HazardPointers, Leaky, Smr, StackTrackSim, ThreadScanSmr};
use ts_structures::{ConcurrentSet, DynSet};
use ts_workload::registry::HARNESS_HAZARD_SLOTS;
use ts_workload::{SchemeKind, StructureKind, WorkloadParams};

const KEY_RANGE: u64 = 128;

/// What one churn run observes: every operation's boolean result plus the
/// final membership bitmap.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    op_results: Vec<bool>,
    members: Vec<u64>,
}

/// A deterministic single-threaded mixed workload (LCG-driven), identical
/// for every scheme and both dispatch paths.
fn churn<S: Smr>(scheme: &S, set: &dyn ConcurrentSet<S>) -> Observation {
    let h = scheme.register();
    let mut op_results = Vec::new();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..4_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (x >> 33) % KEY_RANGE;
        op_results.push(match i % 3 {
            0 => set.insert(&h, k),
            1 => set.remove(&h, k),
            _ => set.contains(&h, k),
        });
    }
    let members = (0..KEY_RANGE).filter(|&k| set.contains(&h, k)).collect();
    Observation {
        op_results,
        members,
    }
}

/// The same deterministic workload through the object-safe [`DynSet`]
/// layer — double erasure: scheme behind `ErasedSmr`, structure behind
/// `dyn DynSet`.
fn churn_dyn(erased: &ErasedSmr, set: &dyn DynSet) -> Observation {
    let h = erased.register();
    let mut op_results = Vec::new();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..4_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (x >> 33) % KEY_RANGE;
        op_results.push(match i % 3 {
            0 => set.insert(&h, k),
            1 => set.remove(&h, k),
            _ => set.contains(&h, k),
        });
    }
    let members = (0..KEY_RANGE).filter(|&k| set.contains(&h, k)).collect();
    Observation {
        op_results,
        members,
    }
}

/// Monomorphized run: concrete scheme type, generic structure; mirrors
/// the registry's per-scheme configuration.
fn run_mono(
    kind: SchemeKind,
    structure: StructureKind,
    params: &WorkloadParams,
) -> (Observation, usize) {
    fn go<S: Smr>(
        scheme: S,
        structure: StructureKind,
        params: &WorkloadParams,
    ) -> (Observation, usize) {
        let set = structure.build_set::<S>(params);
        let obs = churn(&scheme, &*set);
        scheme.quiesce();
        (obs, scheme.outstanding())
    }
    match kind {
        SchemeKind::Leaky => go(Leaky::new(), structure, params),
        SchemeKind::Hazard => go(
            HazardPointers::with_params(HARNESS_HAZARD_SLOTS, 64),
            structure,
            params,
        ),
        SchemeKind::Epoch => go(EpochScheme::with_threshold(1024), structure, params),
        SchemeKind::SlowEpoch => go(
            EpochScheme::slow(1024, params.slow_epoch_delay, params.slow_epoch_period_ops),
            structure,
            params,
        ),
        SchemeKind::StackTrack => go(StackTrackSim::new(), structure, params),
        SchemeKind::ThreadScan => go(
            ThreadScanSmr::with_config(
                SignalPlatform::new().expect("signal platform"),
                threadscan::CollectorConfig::default()
                    .with_buffer_capacity(params.ts_buffer_capacity),
            ),
            structure,
            params,
        ),
    }
}

/// Erased run: the scheme comes from the registry as `Arc<dyn DynSmr>`
/// and drives the structure through `ErasedSmr` — the harness path.
fn run_dyn(
    kind: SchemeKind,
    structure: StructureKind,
    params: &WorkloadParams,
) -> (Observation, usize) {
    let dyn_scheme: Arc<dyn DynSmr> = kind.build(params);
    let erased = ErasedSmr::new(Arc::clone(&dyn_scheme));
    let set = structure.build_set::<ErasedSmr>(params);
    let obs = churn(&erased, &*set);
    dyn_scheme.quiesce();
    (obs, dyn_scheme.outstanding())
}

fn assert_equivalent(kind: SchemeKind, structure: StructureKind) {
    let mut params = WorkloadParams::fig3(structure, 1).scaled_down(64);
    params.ts_buffer_capacity = 256; // force in-run ThreadScan phases
    let (mono, mono_outstanding) = run_mono(kind, structure, &params);
    let (dynamic, dyn_outstanding) = run_dyn(kind, structure, &params);

    assert_eq!(
        mono,
        dynamic,
        "{}/{}: erased path diverged from monomorphized path",
        kind.label(),
        structure.label()
    );
    match kind {
        SchemeKind::Leaky => {
            // "Outstanding" is the intentional leak count; the identical
            // deterministic op stream must leak identically.
            assert_eq!(
                mono_outstanding,
                dyn_outstanding,
                "{}: leak accounting diverged",
                structure.label()
            );
        }
        SchemeKind::ThreadScan => {
            // Conservative stack scanning may pin a handful of nodes via
            // stale frames of this very test thread; exact zero is not
            // guaranteed, bounded-small on both paths is.
            assert!(
                mono_outstanding < 64 && dyn_outstanding < 64,
                "{}: outstanding after quiesce too high (mono {mono_outstanding}, dyn {dyn_outstanding})",
                structure.label()
            );
        }
        _ => {
            assert_eq!(mono_outstanding, 0, "{}: mono books", structure.label());
            assert_eq!(dyn_outstanding, 0, "{}: dyn books", structure.label());
        }
    }
}

#[test]
fn every_scheme_is_equivalent_through_the_erased_layer_on_the_list() {
    for kind in SchemeKind::EXTENDED {
        assert_equivalent(kind, StructureKind::List);
    }
}

#[test]
fn every_scheme_is_equivalent_through_the_erased_layer_on_the_hash() {
    for kind in SchemeKind::EXTENDED {
        assert_equivalent(kind, StructureKind::Hash);
    }
}

#[test]
fn erased_layer_is_equivalent_on_the_resizable_table() {
    // The split-ordered table resizes during churn — the most stateful
    // structure; run it under the two schemes with per-reference state.
    for kind in [SchemeKind::Hazard, SchemeKind::StackTrack] {
        assert_equivalent(kind, StructureKind::SplitOrdered);
    }
}

/// `build_dyn` run: scheme *and* structure erased — the heterogeneous
/// runner's path.
fn run_dyn_set(
    kind: SchemeKind,
    structure: StructureKind,
    params: &WorkloadParams,
) -> (Observation, usize) {
    let dyn_scheme: Arc<dyn DynSmr> = kind.build(params);
    let erased = ErasedSmr::new(Arc::clone(&dyn_scheme));
    let set = structure.build_dyn(params);
    let obs = churn_dyn(&erased, &*set);
    dyn_scheme.quiesce();
    (obs, dyn_scheme.outstanding())
}

fn assert_dyn_set_equivalent(kind: SchemeKind, structure: StructureKind) {
    let mut params = WorkloadParams::fig3(structure, 1).scaled_down(64);
    params.ts_buffer_capacity = 256; // force in-run ThreadScan phases
    let (mono, mono_outstanding) = run_mono(kind, structure, &params);
    let (dynamic, dyn_outstanding) = run_dyn_set(kind, structure, &params);

    assert_eq!(
        mono,
        dynamic,
        "{}/{}: DynSet path diverged from monomorphized path",
        kind.label(),
        structure.label()
    );
    match kind {
        SchemeKind::Leaky => assert_eq!(mono_outstanding, dyn_outstanding),
        SchemeKind::ThreadScan => assert!(mono_outstanding < 64 && dyn_outstanding < 64),
        _ => {
            assert_eq!(mono_outstanding, 0);
            assert_eq!(dyn_outstanding, 0);
        }
    }
}

#[test]
fn every_scheme_is_equivalent_through_the_dyn_set_layer_on_the_hash() {
    for kind in SchemeKind::EXTENDED {
        assert_dyn_set_equivalent(kind, StructureKind::Hash);
    }
}

#[test]
fn every_scheme_is_equivalent_through_the_dyn_set_layer_on_the_skiplist() {
    for kind in SchemeKind::EXTENDED {
        assert_dyn_set_equivalent(kind, StructureKind::Skip);
    }
}

#[test]
fn dyn_set_layer_is_equivalent_on_the_growable_table() {
    for kind in SchemeKind::EXTENDED {
        assert_dyn_set_equivalent(kind, StructureKind::SplitOrdered);
    }
}

/// The priority-queue adapter is deterministic single-threaded (tower
/// heights don't affect op results), so the full observation — including
/// the key-ignoring `contains`/`remove` mapping — must survive double
/// erasure under every scheme.
#[test]
fn dyn_set_layer_is_equivalent_on_the_pq_adapter() {
    for kind in SchemeKind::EXTENDED {
        assert_dyn_set_equivalent(kind, StructureKind::Pq);
    }
}
