//! Integration tests for the paper's two extensions under real signals:
//! §4.3 heap blocks and §7 distributed frees.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use threadscan::{Collector, CollectorConfig, ThreadHandle};
use ts_sigscan::SignalPlatform;

struct Probe {
    drops: Arc<AtomicUsize>,
    _pad: [u64; 8],
}
impl Drop for Probe {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

#[inline(never)]
fn churn(depth: usize) -> usize {
    let noise = std::hint::black_box([depth; 64]);
    if depth == 0 {
        noise[0]
    } else {
        churn(depth - 1) + noise[63]
    }
}

#[inline(never)]
fn plant(
    handle: &ThreadHandle<SignalPlatform>,
    scratch: &mut [usize],
    slot: usize,
    drops: &Arc<AtomicUsize>,
) {
    let node = Box::into_raw(Box::new(Probe {
        drops: Arc::clone(drops),
        _pad: [0; 8],
    }));
    scratch[slot] = node as usize;
    unsafe { handle.retire(node) };
}

#[test]
fn heap_block_reference_pins_until_removed() {
    let collector = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(4),
    );
    let handle = collector.register();
    let drops = Arc::new(AtomicUsize::new(0));

    let mut scratch: Box<[usize; 64]> = Box::new([0; 64]);
    handle
        .add_heap_block(scratch.as_ptr().cast(), 64 * 8)
        .unwrap();

    plant(&handle, &mut scratch[..], 33, &drops);
    std::hint::black_box(churn(64));
    handle.flush();
    handle.flush();
    assert_eq!(drops.load(Ordering::SeqCst), 0, "heap-block root must pin");

    // Release direction: clearing the root must let heap-block-pinned
    // nodes be reclaimed. One *fixed* address can stay pinned forever by a
    // coincidental stale word elsewhere in the scanned region (a dead
    // stack slot or reused allocator address is indistinguishable from a
    // live reference — see the liveness note on
    // `unreferenced_node_is_eventually_reclaimed` in ts-sigscan), so the
    // assertable property is over a stream of fresh nodes: keep planting
    // and clearing until one demonstrably frees.
    scratch[33] = 0;
    let mut freed = false;
    for _ in 0..64 {
        std::hint::black_box(churn(64));
        handle.flush();
        if drops.load(Ordering::SeqCst) > 0 {
            freed = true;
            break;
        }
        plant(&handle, &mut scratch[..], 33, &drops);
        scratch[33] = 0;
    }
    assert!(freed, "clearing the heap-block root must release nodes");
    handle.remove_heap_block(scratch.as_ptr().cast()).unwrap();
    drop(handle);
}

#[test]
fn interior_heap_block_reference_pins_in_range_mode() {
    let collector = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(4),
    );
    let handle = collector.register();
    let drops = Arc::new(AtomicUsize::new(0));

    let mut scratch: Box<[usize; 8]> = Box::new([0; 8]);
    handle
        .add_heap_block(scratch.as_ptr().cast(), 8 * 8)
        .unwrap();

    // Plant an *interior* pointer (offset 16 into the allocation).
    #[inline(never)]
    fn plant_interior(
        handle: &ThreadHandle<SignalPlatform>,
        scratch: &mut [usize],
        drops: &Arc<AtomicUsize>,
    ) {
        let node = Box::into_raw(Box::new(Probe {
            drops: Arc::clone(drops),
            _pad: [0; 8],
        }));
        scratch[2] = node as usize + 16;
        unsafe { handle.retire(node) };
    }
    plant_interior(&handle, &mut scratch[..], &drops);
    std::hint::black_box(churn(64));
    handle.flush();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        0,
        "interior pointer must pin under range matching"
    );
    // Fresh-node stream for the release direction; see the comment in
    // `heap_block_reference_pins_until_removed`.
    scratch[2] = 0;
    let mut freed = false;
    for _ in 0..64 {
        std::hint::black_box(churn(64));
        handle.flush();
        if drops.load(Ordering::SeqCst) > 0 {
            freed = true;
            break;
        }
        plant_interior(&handle, &mut scratch[..], &drops);
        scratch[2] = 0;
    }
    assert!(freed, "clearing the interior root must release nodes");
    drop(handle);
}

#[test]
fn distributed_frees_share_reclamation_work_across_threads() {
    let collector = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default()
            .with_buffer_capacity(64)
            .with_distributed_frees(true),
    );
    let drops = Arc::new(AtomicUsize::new(0));
    const PER_THREAD: usize = 1000;

    std::thread::scope(|s| {
        for _ in 0..4 {
            let collector = Arc::clone(&collector);
            let drops = Arc::clone(&drops);
            s.spawn(move || {
                let handle = collector.register();
                for _ in 0..PER_THREAD {
                    let node = Box::into_raw(Box::new(Probe {
                        drops: Arc::clone(&drops),
                        _pad: [0; 8],
                    }));
                    // Never held: retire immediately.
                    unsafe { handle.retire(node) };
                }
            });
        }
    });
    collector.collect_now();
    collector.collect_now();
    let st = collector.stats();
    assert_eq!(st.retired, 4 * PER_THREAD);
    assert_eq!(
        drops.load(Ordering::SeqCst),
        st.freed,
        "drop count and freed counter must agree"
    );
    assert!(
        st.distributed_frees > 0,
        "some frees must have been performed by retiring threads, not the reclaimer"
    );
    // Everything must be reclaimed by now (workers' stacks are gone).
    assert_eq!(st.freed, 4 * PER_THREAD, "no node may be stranded");
}
