//! Integration: the simulated platform's handshake under real concurrency
//! — many real threads polling cooperatively, a reclaimer force-scanning
//! laggards, with full safety accounting. Complements the deterministic
//! model in `ts-simthread` by adding true parallel interleavings.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use threadscan::{Collector, CollectorConfig};
use ts_simthread::SimPlatform;

struct Probe {
    drops: Arc<AtomicUsize>,
    _pad: [u64; 4],
}
impl Drop for Probe {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn concurrent_polling_threads_reclaim_safely() {
    let platform = SimPlatform::handshake(16, Duration::from_millis(20));
    let collector = Collector::with_config(
        platform.clone(),
        CollectorConfig::default().with_buffer_capacity(32),
    );
    let drops = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    const THREADS: usize = 4;
    const PER_THREAD: usize = 3_000;

    std::thread::scope(|s| {
        // Poller threads: simulated application threads that periodically
        // publish/retract roots and poll for scan requests.
        for _ in 0..THREADS {
            let platform = platform.clone();
            let collector = Arc::clone(&collector);
            let drops = Arc::clone(&drops);
            s.spawn(move || {
                let handle = collector.register();
                // Our record is the most recently registered one on this
                // platform created by *this* thread; find it by pointer
                // identity of its shadow via records() — registration
                // order is racy, so pick the record whose shadow we can
                // publish to and remember it.
                let records = platform.records();
                let my_rec = records.last().cloned();
                let mut published: Option<(usize, usize)> = None;
                for i in 0..PER_THREAD {
                    let node = Box::into_raw(Box::new(Probe {
                        drops: Arc::clone(&drops),
                        _pad: [0; 4],
                    }));
                    if let Some(rec) = &my_rec {
                        // Occasionally hold a node via the shadow stack
                        // and retire it while "held".
                        if i % 7 == 0 {
                            if let Some(slot) = rec.shadow().publish(node as usize) {
                                // Retract the previous one, if any.
                                if let Some((old_slot, _)) = published.take() {
                                    rec.shadow().retract(old_slot);
                                }
                                published = Some((slot, node as usize));
                            }
                        }
                        platform.poll(rec);
                    }
                    // SAFETY: node is unreachable from shared memory; at
                    // most our own shadow stack roots it.
                    unsafe { handle.retire(node) };
                }
                if let (Some(rec), Some((slot, _))) = (&my_rec, published) {
                    rec.shadow().retract(slot);
                }
                drop(handle);
            });
        }
        stop.store(true, Ordering::Relaxed);
    });

    collector.collect_now();
    collector.collect_now();
    let st = collector.stats();
    assert_eq!(st.retired, THREADS * PER_THREAD);
    assert_eq!(
        drops.load(Ordering::SeqCst),
        st.freed,
        "drop instrumentation and collector accounting must agree"
    );
    assert_eq!(
        st.freed,
        THREADS * PER_THREAD,
        "all roots retracted ⇒ everything reclaimed"
    );
}

#[test]
fn force_scan_keeps_reclaimer_live_despite_stalled_pollers() {
    // Threads that never poll: every phase must be completed by
    // force-scans, and throughput of phases must not be zero.
    let platform = SimPlatform::handshake(4, Duration::from_millis(1));
    let collector = Collector::with_config(
        platform.clone(),
        CollectorConfig::default().with_buffer_capacity(16),
    );
    let drops = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // A stalled registered thread (never polls).
        {
            let platform = platform.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                use threadscan::Platform as _;
                let _token = platform.register_current(Arc::new(threadscan::ThreadRoots::new(4)));
                while !stop.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
            });
        }
        // The worker that retires.
        let collector2 = Arc::clone(&collector);
        let drops2 = Arc::clone(&drops);
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            let handle = collector2.register();
            for _ in 0..500 {
                let node = Box::into_raw(Box::new(Probe {
                    drops: Arc::clone(&drops2),
                    _pad: [0; 4],
                }));
                unsafe { handle.retire(node) };
            }
            drop(handle);
            stop2.store(true, Ordering::Relaxed);
        });
    });

    collector.collect_now();
    assert_eq!(drops.load(Ordering::SeqCst), 500);
    assert!(
        platform.force_scans() > 0,
        "the stalled thread must have been force-scanned"
    );
    assert!(collector.stats().collects > 0);
}
