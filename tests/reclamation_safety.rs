//! Cross-crate integration: the three evaluation structures churning under
//! ThreadScan with **real POSIX signals**, with reclamation accounting
//! checked end-to-end.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use threadscan::CollectorConfig;
use ts_sigscan::SignalPlatform;
use ts_smr::{Smr, ThreadScanSmr};
use ts_structures::{ConcurrentSet, HarrisList, LockFreeHashTable, SkipList};

type Ts = ThreadScanSmr<SignalPlatform>;

fn scheme(buffer: usize) -> Arc<Ts> {
    Arc::new(ThreadScanSmr::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(buffer),
    ))
}

/// Generic churn: writers toggle keys, readers traverse, then quiesce and
/// check the scheme's books balance.
fn churn_structure<T: ConcurrentSet<Ts> + 'static>(scheme: Arc<Ts>, set: Arc<T>, range: u64) {
    // Prefill half the range.
    {
        let h = scheme.register();
        for k in 0..range / 2 {
            set.insert(&h, k * 2);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let scheme = Arc::clone(&scheme);
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let h = scheme.register();
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    let key = k % range;
                    if set.remove(&h, key) {
                        set.insert(&h, key);
                    }
                    k = k
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                }
            });
        }
        for _ in 0..2 {
            let scheme = Arc::clone(&scheme);
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let h = scheme.register();
                let mut k = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(set.contains(&h, k % range));
                    k = k.wrapping_add(7);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    scheme.quiesce();
    let st = scheme.stats();
    assert!(st.retired > 0, "churn must retire nodes");
    assert!(st.freed > 0, "reclamation must make progress");
    assert_eq!(
        st.retired - st.freed,
        scheme.outstanding(),
        "books must balance"
    );
    // After quiescing with all worker stacks gone, nothing should remain
    // pinned except what the *test thread's own* stale frames hold.
    assert!(
        scheme.outstanding() < 128,
        "outstanding {} after quiesce — reclamation is not keeping up",
        scheme.outstanding()
    );
}

#[test]
fn harris_list_churn_reclaims_under_real_signals() {
    let s = scheme(256);
    let list = Arc::new(HarrisList::<Ts>::new());
    churn_structure(Arc::clone(&s), list, 512);
}

#[test]
fn hash_table_churn_reclaims_under_real_signals() {
    let s = scheme(256);
    let table = Arc::new(LockFreeHashTable::<Ts>::new(64));
    churn_structure(Arc::clone(&s), table, 4096);
}

#[test]
fn skiplist_churn_reclaims_under_real_signals() {
    let s = scheme(256);
    let sl = Arc::new(SkipList::<Ts>::new());
    churn_structure(Arc::clone(&s), sl, 2048);
}

/// Set semantics under ThreadScan: disjoint per-thread key ranges end in
/// exactly the expected final state.
#[test]
fn threadscan_preserves_set_semantics() {
    let s = scheme(128);
    let list = Arc::new(HarrisList::<Ts>::new());
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            let list = Arc::clone(&list);
            scope.spawn(move || {
                let h = s.register();
                let base = t * 10_000;
                for i in 0..500u64 {
                    assert!(list.insert(&h, base + i), "insert {base}+{i}");
                }
                for i in (0..500u64).step_by(2) {
                    assert!(list.remove(&h, base + i), "remove {base}+{i}");
                }
                for i in 0..500u64 {
                    assert_eq!(list.contains(&h, base + i), i % 2 == 1);
                }
            });
        }
    });
    let keys = list.keys_sequential();
    assert_eq!(keys.len(), 4 * 250);
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
}

/// The collector's Drop must reclaim whatever was still deferred.
#[test]
fn collector_drop_reclaims_survivors() {
    let s = scheme(1 << 20); // huge buffer: nothing triggers during the run
    let list = Arc::new(HarrisList::<Ts>::new());
    {
        let h = s.register();
        for k in 0..2000u64 {
            list.insert(&h, k);
        }
        for k in 0..2000u64 {
            assert!(list.remove(&h, k));
        }
    }
    let before = s.stats();
    assert_eq!(before.freed, 0, "nothing should have been freed yet");
    drop(list);
    // Dropping the scheme (and with it the collector) reclaims the
    // buffered nodes.
    let list_nodes = before.retired;
    drop(s);
    // No way to read stats after drop; the assertion is that the drop ran
    // without double-free/UAF (asan/valgrind-visible) and the counter
    // before showed everything buffered.
    assert_eq!(list_nodes, 2000);
}
