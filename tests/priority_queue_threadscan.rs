//! The Shavit–Lotan priority queue churning under ThreadScan with real
//! POSIX signals: producers and consumers race `insert`/`delete_min`
//! while the collector reclaims unlinked skip nodes mid-traversal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use threadscan::CollectorConfig;
use ts_sigscan::SignalPlatform;
use ts_smr::{Smr, ThreadScanSmr};
use ts_structures::PriorityQueue;

type Ts = ThreadScanSmr<SignalPlatform>;

fn scheme(buffer: usize) -> Arc<Ts> {
    Arc::new(ThreadScanSmr::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(buffer),
    ))
}

#[test]
fn producers_and_consumers_under_real_signals() {
    const PRODUCERS: u64 = 2;
    const PER_PRODUCER: u64 = 2_000;
    let scheme = scheme(128); // small buffer: force real collect rounds
    let pq = Arc::new(PriorityQueue::<Ts>::new());
    let consumed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let scheme = Arc::clone(&scheme);
            let pq = Arc::clone(&pq);
            s.spawn(move || {
                let h = scheme.register();
                for i in 0..PER_PRODUCER {
                    assert!(pq.insert(&h, t * 1_000_000 + i));
                }
            });
        }
        for _ in 0..2 {
            let scheme = Arc::clone(&scheme);
            let pq = Arc::clone(&pq);
            let consumed = Arc::clone(&consumed);
            s.spawn(move || {
                let h = scheme.register();
                let mut dry = 0;
                while dry < 500 {
                    match pq.delete_min(&h) {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            dry = 0;
                        }
                        None => {
                            dry += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    let drained = consumed.load(Ordering::Relaxed);
    let resident = pq.len_sequential() as u64;
    assert_eq!(
        drained + resident,
        PRODUCERS * PER_PRODUCER,
        "drained {drained} + resident {resident} must cover all inserts"
    );

    // The queue retired (drained) nodes through the collector; after a
    // quiesce the books must nearly balance (conservative stack scans may
    // pin a handful of survivors).
    scheme.quiesce();
    let stats = scheme.stats();
    assert!(
        stats.collects > 0,
        "a 128-entry buffer and thousands of retires must trigger collects"
    );
    assert!(
        scheme.outstanding() < 256,
        "outstanding {} after quiesce",
        scheme.outstanding()
    );
}

#[test]
fn single_thread_drain_order_survives_reclamation() {
    let scheme = scheme(64);
    let pq = PriorityQueue::<Ts>::new();
    let h = scheme.register();
    for k in (0..1_000u64).rev() {
        assert!(pq.insert(&h, k));
    }
    // Draining retires nodes as we go; order must hold even as collect
    // rounds run underneath the traversals.
    for want in 0..1_000u64 {
        assert_eq!(pq.delete_min(&h), Some(want));
    }
    assert_eq!(pq.delete_min(&h), None);
    drop(h);
    scheme.quiesce();
    assert!(scheme.stats().freed > 0, "reclamation must have happened");
}
