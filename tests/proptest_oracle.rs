//! Property tests: each structure must behave exactly like a `BTreeSet`
//! over arbitrary operation sequences (sequential linearization oracle),
//! under both a trivial scheme and a real reclaiming scheme (epoch with a
//! tiny threshold, so reclamation happens *during* the sequence).

use std::collections::BTreeSet;

use proptest::prelude::*;
use ts_smr::{EpochScheme, HazardPointers, Leaky, Smr};
use ts_structures::{
    ConcurrentSet, HarrisList, LockFreeHashTable, PriorityQueue, SkipList, SplitOrderedSet,
    REQUIRED_SLOTS,
};

#[derive(Debug, Clone)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0..key_space).prop_map(SetOp::Insert),
        (0..key_space).prop_map(SetOp::Remove),
        (0..key_space).prop_map(SetOp::Contains),
    ]
}

fn check_against_oracle<S: Smr, T: ConcurrentSet<S>>(scheme: &S, set: &T, ops: &[SetOp]) {
    let handle = scheme.register();
    let mut oracle = BTreeSet::new();
    for op in ops {
        match *op {
            SetOp::Insert(k) => {
                assert_eq!(set.insert(&handle, k), oracle.insert(k), "insert({k})");
            }
            SetOp::Remove(k) => {
                assert_eq!(set.remove(&handle, k), oracle.remove(&k), "remove({k})");
            }
            SetOp::Contains(k) => {
                assert_eq!(
                    set.contains(&handle, k),
                    oracle.contains(&k),
                    "contains({k})"
                );
            }
        }
    }
    // Final membership must agree everywhere.
    for k in 0..64 {
        assert_eq!(set.contains(&handle, k), oracle.contains(&k), "final({k})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn harris_list_matches_btreeset(ops in proptest::collection::vec(op_strategy(64), 1..200)) {
        let scheme = Leaky::new();
        let set = HarrisList::<Leaky>::new();
        check_against_oracle(&scheme, &set, &ops);
    }

    #[test]
    fn harris_list_matches_btreeset_with_live_reclamation(
        ops in proptest::collection::vec(op_strategy(64), 1..200)
    ) {
        // Epoch threshold 2: frees happen mid-sequence, catching
        // use-after-free of just-removed nodes.
        let scheme = EpochScheme::with_threshold(2);
        let set = HarrisList::<EpochScheme>::new();
        check_against_oracle(&scheme, &set, &ops);
    }

    #[test]
    fn hash_table_matches_btreeset(ops in proptest::collection::vec(op_strategy(256), 1..200)) {
        let scheme = EpochScheme::with_threshold(2);
        let set = LockFreeHashTable::<EpochScheme>::new(8);
        check_against_oracle(&scheme, &set, &ops);
    }

    #[test]
    fn skiplist_matches_btreeset(ops in proptest::collection::vec(op_strategy(64), 1..200)) {
        let scheme = EpochScheme::with_threshold(2);
        let set = SkipList::<EpochScheme>::new();
        check_against_oracle(&scheme, &set, &ops);
    }

    #[test]
    fn skiplist_matches_btreeset_under_hazard_pointers(
        ops in proptest::collection::vec(op_strategy(32), 1..120)
    ) {
        let scheme = HazardPointers::with_params(REQUIRED_SLOTS, 4);
        let set = SkipList::<HazardPointers>::new();
        check_against_oracle(&scheme, &set, &ops);
    }

    #[test]
    fn split_ordered_matches_btreeset(
        ops in proptest::collection::vec(op_strategy(256), 1..200)
    ) {
        // Tiny initial table + live reclamation: splits happen mid-sequence.
        let scheme = EpochScheme::with_threshold(2);
        let set = SplitOrderedSet::<EpochScheme>::with_buckets(2);
        check_against_oracle(&scheme, &set, &ops);
    }

    /// The priority queue must behave exactly like a `BTreeSet` drained
    /// through `pop_first` over arbitrary insert/delete-min/peek streams.
    #[test]
    fn priority_queue_matches_btreeset_oracle(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u64..64).prop_map(PqOp::Insert),
                Just(PqOp::DeleteMin),
                Just(PqOp::PeekMin),
            ],
            1..200,
        )
    ) {
        let scheme = EpochScheme::with_threshold(2);
        let pq = PriorityQueue::<EpochScheme>::new();
        let handle = scheme.register();
        let mut oracle = BTreeSet::new();
        for op in &ops {
            match *op {
                PqOp::Insert(k) => {
                    prop_assert_eq!(pq.insert(&handle, k), oracle.insert(k));
                }
                PqOp::DeleteMin => {
                    prop_assert_eq!(pq.delete_min(&handle), oracle.pop_first());
                }
                PqOp::PeekMin => {
                    prop_assert_eq!(pq.peek_min(&handle), oracle.first().copied());
                }
            }
        }
        let mut rest: Vec<u64> = Vec::new();
        while let Some(k) = pq.delete_min(&handle) {
            rest.push(k);
        }
        let want: Vec<u64> = oracle.into_iter().collect();
        prop_assert_eq!(rest, want, "final drain must be the sorted residue");
    }
}

#[derive(Debug, Clone)]
enum PqOp {
    Insert(u64),
    DeleteMin,
    PeekMin,
}
