//! Fast cross-scheme smoke test.
//!
//! Constructs each of the five reclamation schemes of the evaluation
//! through `ts_smr::api` and runs a short two-thread
//! insert/remove/contains round on the Harris list under each. The point
//! is latency-to-signal: a scheme whose registration, protection, or
//! retire path regresses fails here in seconds, long before the heavier
//! conformance/oracle suites get to it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use ts_sigscan::SignalPlatform;
use ts_smr::{EpochScheme, HazardPointers, Leaky, Smr, StackTrackSim, ThreadScanSmr};
use ts_structures::{ConcurrentSet, HarrisList};

/// Two threads, disjoint key stripes plus a contended stripe; every
/// operation's return value is checked against what a set must do.
fn smoke<S: Smr>(scheme: Arc<S>) {
    const PER_THREAD_KEYS: u64 = 128;
    let list = Arc::new(HarrisList::<S>::new());
    let barrier = Arc::new(Barrier::new(2));
    let contended_inserts = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..2u64 {
            let scheme = Arc::clone(&scheme);
            let list = Arc::clone(&list);
            let barrier = Arc::clone(&barrier);
            let contended_inserts = Arc::clone(&contended_inserts);
            s.spawn(move || {
                let handle = scheme.register();
                barrier.wait();

                // Private stripe: fully deterministic outcomes.
                let base = 1_000 * (t + 1);
                for k in base..base + PER_THREAD_KEYS {
                    assert!(list.insert(&handle, k), "fresh key {k} must insert");
                    assert!(list.contains(&handle, k), "key {k} must be visible");
                }
                for k in (base..base + PER_THREAD_KEYS).step_by(2) {
                    assert!(list.remove(&handle, k), "key {k} must remove once");
                    assert!(!list.remove(&handle, k), "key {k} must not remove twice");
                    assert!(!list.contains(&handle, k), "key {k} must be gone");
                }

                // Contended stripe: both threads race on the same keys;
                // exactly one insert per key may win.
                for k in 0..PER_THREAD_KEYS {
                    if list.insert(&handle, k) {
                        contended_inserts.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Handle drops before the thread exits (required by the
                // signal platform's thread discipline).
            });
        }
    });

    assert_eq!(
        contended_inserts.load(Ordering::Relaxed),
        PER_THREAD_KEYS,
        "each contended key must be inserted exactly once"
    );

    // Survivor count: per thread, half the private stripe survived, plus
    // the contended stripe once.
    let handle = scheme.register();
    let mut resident = 0u64;
    for t in 0..2u64 {
        let base = 1_000 * (t + 1);
        resident += (base..base + PER_THREAD_KEYS)
            .filter(|&k| list.contains(&handle, k))
            .count() as u64;
    }
    resident += (0..PER_THREAD_KEYS)
        .filter(|&k| list.contains(&handle, k))
        .count() as u64;
    assert_eq!(resident, PER_THREAD_KEYS / 2 * 2 + PER_THREAD_KEYS);

    scheme.quiesce();
    drop(handle);
}

#[test]
fn leaky_smoke() {
    let scheme = Arc::new(Leaky::new());
    assert_eq!(scheme.name(), "leaky");
    smoke(scheme);
}

#[test]
fn hazard_pointers_smoke() {
    let scheme = Arc::new(HazardPointers::new());
    assert_eq!(scheme.name(), "hazard");
    smoke(scheme);
}

#[test]
fn epoch_smoke() {
    let scheme = Arc::new(EpochScheme::new());
    assert_eq!(scheme.name(), "epoch");
    smoke(scheme);
}

#[test]
fn stacktrack_smoke() {
    let scheme = Arc::new(StackTrackSim::new());
    smoke(scheme);
}

#[test]
fn threadscan_smoke() {
    let scheme = Arc::new(ThreadScanSmr::new(
        SignalPlatform::new().expect("signal platform"),
    ));
    assert_eq!(scheme.name(), "threadscan");
    smoke(scheme);
}
