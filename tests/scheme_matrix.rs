//! The full evaluation matrix as a smoke grid: every scheme × every
//! structure runs the workload harness briefly and must (a) complete,
//! (b) make reclamation progress where applicable, and (c) keep the
//! structure consistent.

use std::time::Duration;

use ts_workload::{run_combo, SchemeKind, StructureKind, WorkloadParams};

fn quick(structure: StructureKind, threads: usize) -> WorkloadParams {
    WorkloadParams::fig3(structure, threads)
        .scaled_down(64)
        .with_duration(Duration::from_millis(150))
}

#[test]
fn full_matrix_completes() {
    for structure in StructureKind::EXTENDED {
        for scheme in SchemeKind::ALL {
            let r = run_combo(scheme, &quick(structure, 2));
            assert!(
                r.total_ops > 0,
                "{}/{} produced no operations",
                scheme.label(),
                structure.label()
            );
        }
    }
}

#[test]
fn reclaiming_schemes_free_memory() {
    // With frequent updates and small structures, every reclaiming scheme
    // must show bounded outstanding garbage after quiescing.
    for scheme in [
        SchemeKind::Hazard,
        SchemeKind::Epoch,
        SchemeKind::ThreadScan,
    ] {
        let mut p = quick(StructureKind::List, 3).with_update_pct(50);
        p.ts_buffer_capacity = 64;
        p.duration = Duration::from_millis(300);
        let r = run_combo(scheme, &p);
        let outstanding = r.outstanding_after.expect("reclaiming scheme");
        assert!(
            outstanding < 5_000,
            "{}: outstanding {} after quiesce",
            scheme.label(),
            outstanding
        );
    }
}

#[test]
fn leaky_leaks_proportionally_to_updates() {
    let read_only = run_combo(
        SchemeKind::Leaky,
        &quick(StructureKind::Hash, 2).with_update_pct(0),
    );
    let heavy = run_combo(
        SchemeKind::Leaky,
        &quick(StructureKind::Hash, 2).with_update_pct(100),
    );
    assert_eq!(read_only.leaked, Some(0), "no updates ⇒ no leaks");
    assert!(heavy.leaked.unwrap() > 0, "updates ⇒ leaks under Leaky");
}

#[test]
fn slow_epoch_throughput_collapses_vs_epoch() {
    // The paper's Slow Epoch point: one delayed thread wrecks the scheme.
    // With a 40ms stall per 4096 ops per the errant thread, epoch should
    // beat slow-epoch clearly on the same workload.
    let mut p = quick(StructureKind::List, 2);
    p.duration = Duration::from_millis(400);
    p.slow_epoch_period_ops = 512; // stall often enough to be visible
    let epoch = run_combo(SchemeKind::Epoch, &p);
    let slow = run_combo(SchemeKind::SlowEpoch, &p);
    assert!(
        slow.ops_per_sec < epoch.ops_per_sec,
        "slow-epoch ({:.0}) should underperform epoch ({:.0})",
        slow.ops_per_sec,
        epoch.ops_per_sec
    );
}

#[test]
fn oversubscription_smoke() {
    // 4× more threads than this machine has: everything still completes
    // and ThreadScan still reclaims (Figure 4's regime).
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = (hw * 4).max(4);
    for scheme in SchemeKind::OVERSUB {
        let mut p = quick(StructureKind::Hash, threads);
        p.duration = Duration::from_millis(250);
        let r = run_combo(scheme, &p);
        assert!(r.total_ops > 0, "{} stalled oversubscribed", scheme.label());
        if scheme == SchemeKind::ThreadScan {
            let outstanding = r.outstanding_after.unwrap();
            assert!(
                outstanding < 10_000,
                "threadscan outstanding {outstanding} oversubscribed"
            );
        }
    }
}

#[test]
fn tuned_buffer_reduces_collect_frequency() {
    // §6's tuning argument, checked directly via collector counters.
    let mut small = quick(StructureKind::Hash, 3).with_update_pct(50);
    small.duration = Duration::from_millis(300);
    small.ts_buffer_capacity = 64;
    let mut large = small.clone();
    large.ts_buffer_capacity = 1024;

    let r_small = run_combo(SchemeKind::ThreadScan, &small);
    let r_large = run_combo(SchemeKind::ThreadScan, &large);
    let c_small = r_small.threadscan.unwrap().collects;
    let c_large = r_large.threadscan.unwrap().collects;
    assert!(
        c_small > c_large,
        "small buffers must collect more often ({c_small} vs {c_large})"
    );
}
